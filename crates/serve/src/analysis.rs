//! Request parameters and the per-request analysis drivers.
//!
//! Both endpoints stream the upload exactly once: the body bytes flow
//! through [`crate::digest::DigestReader`] (content addressing) into a
//! chunked decoder — [`FastBtrtReader`] for `BTRT` uploads (the columnar
//! slice fast path), [`ChunkedTraceReader`] for text — and every decoded
//! chunk is folded into a [`DenseTraceStats`] on the way past:
//! classification, simulation and profiling all ride the same pass, with
//! per-branch statistics indexed by the reader's dense interned ids rather
//! than a per-record map lookup. Peak memory per request is one chunk plus
//! the interning/statistics tables, independent of upload length; the
//! distinct-branch tables are additionally capped by the static-branch
//! budget.

use crate::error::ServeError;
use btr_core::advisor::{ClassRecommendation, ComponentStyle, HybridAdvisor};
use btr_core::analysis::{ClassHistoryMatrix, ClassMissRates, ClassificationAnalysis};
use btr_core::class::BinningScheme;
use btr_core::distribution::{ClassDistribution, Metric};
use btr_core::joint::JointClassTable;
use btr_core::profile::ProgramProfile;
use btr_sim::config::PredictorFamily;
use btr_sim::engine::{RunResult, SimEngine};
use btr_sim::sweep::SweepResult;
use btr_trace::io::chunked::TraceChunk;
use btr_trace::{
    BranchRecord, ChunkStream, ChunkedTraceReader, DenseTraceStats, FastBtrtReader, InternedTrace,
    Trace, TraceMetadata,
};
use btr_wire::{MapBuilder, Value, Wire};
use std::cell::Cell;
use std::io::Read;
use std::sync::Arc;
use stealpool::WorkStealingPool;

/// How an upload body is encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BodyFormat {
    /// The `BTRT` binary trace format (`application/x-btrt`, the default).
    Btrt,
    /// The line-oriented text trace format (`text/plain`).
    Text,
}

impl BodyFormat {
    /// Maps a `Content-Type` header to a body format; absent means `BTRT`.
    ///
    /// # Errors
    ///
    /// Unknown content types are a 400 — silently guessing the framing of a
    /// binary upload corrupts the decode in confusing ways.
    pub fn from_content_type(header: Option<&str>) -> Result<BodyFormat, ServeError> {
        let Some(raw) = header else {
            return Ok(BodyFormat::Btrt);
        };
        let essence = raw.split(';').next().unwrap_or_default().trim();
        match essence {
            "" | "application/x-btrt" | "application/octet-stream" => Ok(BodyFormat::Btrt),
            "text/plain" => Ok(BodyFormat::Text),
            other => Err(ServeError::BadRequest(format!(
                "unsupported Content-Type {other:?} (expected application/x-btrt or text/plain)"
            ))),
        }
    }
}

/// Parses a `scheme` query parameter: `paper11` (default), `chang6`, or
/// `uniformN` with `2 <= N <= 64`.
pub fn parse_scheme(raw: Option<&str>) -> Result<BinningScheme, ServeError> {
    match raw {
        None | Some("paper11") => Ok(BinningScheme::Paper11),
        Some("chang6") => Ok(BinningScheme::Chang6),
        Some(text) => {
            if let Some(n) = text.strip_prefix("uniform") {
                let n: usize = n
                    .parse()
                    .map_err(|_| ServeError::BadRequest(format!("unparseable scheme {text:?}")))?;
                if !(2..=64).contains(&n) {
                    return Err(ServeError::BadRequest(format!(
                        "uniform scheme wants 2..=64 classes, got {n}"
                    )));
                }
                Ok(BinningScheme::Uniform(n))
            } else {
                Err(ServeError::BadRequest(format!(
                    "unknown scheme {text:?} (expected paper11, chang6 or uniformN)"
                )))
            }
        }
    }
}

/// Renders a scheme back to its query-parameter form (for cache keys).
pub fn scheme_param(scheme: BinningScheme) -> String {
    match scheme {
        BinningScheme::Paper11 => "paper11".into(),
        BinningScheme::Chang6 => "chang6".into(),
        BinningScheme::Uniform(n) => format!("uniform{n}"),
    }
}

/// Parses a `metric` query parameter: `transition` (default) or `taken`.
pub fn parse_metric(raw: Option<&str>) -> Result<Metric, ServeError> {
    match raw {
        None | Some("transition") => Ok(Metric::TransitionRate),
        Some("taken") => Ok(Metric::TakenRate),
        Some(other) => Err(ServeError::BadRequest(format!(
            "unknown metric {other:?} (expected taken or transition)"
        ))),
    }
}

/// Parses a `family` query parameter: `pas` (default) or `gas`.
pub fn parse_family(raw: Option<&str>) -> Result<PredictorFamily, ServeError> {
    match raw {
        None | Some("pas") => Ok(PredictorFamily::PAs),
        Some("gas") => Ok(PredictorFamily::GAs),
        Some(other) => Err(ServeError::BadRequest(format!(
            "unknown family {other:?} (expected pas or gas)"
        ))),
    }
}

/// Parses a `histories` query parameter: a comma list of history lengths,
/// deduplicated and sorted; defaults to `0,1,2,4,8` when absent. Each entry
/// must fit the family's pattern tables.
pub fn parse_histories(raw: Option<&str>, family: PredictorFamily) -> Result<Vec<u32>, ServeError> {
    let mut histories: Vec<u32> = match raw {
        None | Some("") => vec![0, 1, 2, 4, 8],
        Some(text) => text
            .split(',')
            .map(|part| {
                part.trim().parse::<u32>().map_err(|_| {
                    ServeError::BadRequest(format!("unparseable history length {part:?}"))
                })
            })
            .collect::<Result<Vec<u32>, ServeError>>()?,
    };
    histories.sort_unstable();
    histories.dedup();
    if histories.is_empty() {
        return Err(ServeError::BadRequest("empty history list".into()));
    }
    let max = family.max_history();
    if let Some(&too_big) = histories.iter().find(|&&h| h > max) {
        return Err(ServeError::BadRequest(format!(
            "history {too_big} exceeds {} bits for family {}",
            max,
            family.label()
        )));
    }
    Ok(histories)
}

/// Per-request resource budgets, copied from the server config.
#[derive(Debug, Clone, Copy)]
pub struct Budgets {
    /// Records per decoded chunk (bounds the chunk buffer).
    pub chunk_records: usize,
    /// Distinct static conditional branches per upload (bounds the
    /// interning, statistics and per-slot predictor tables).
    pub max_static_branches: usize,
}

/// What one streamed analysis produced, plus accounting for the metrics.
#[derive(Debug)]
pub struct AnalysisOutcome {
    /// The response document.
    pub value: Value,
    /// Records decoded from the upload.
    pub records: u64,
}

/// Streams `body` once and renders the classification document: metadata,
/// both class distributions, the joint table, the misprediction analysis and
/// the §5.4 advisor recommendations.
///
/// # Errors
///
/// Decode failures surface as 422s, transport failures as 408/500s, budget
/// exhaustion as 413s.
pub fn run_classify<R: Read>(
    body: R,
    format: BodyFormat,
    scheme: BinningScheme,
    budgets: Budgets,
) -> Result<AnalysisOutcome, ServeError> {
    let mut dense = DenseTraceStats::new();
    let (metadata, records) = match format {
        BodyFormat::Btrt => {
            let mut reader =
                FastBtrtReader::new(body, budgets.chunk_records).map_err(ServeError::from_trace)?;
            let metadata = reader.metadata().clone();
            let records = observe_all(&mut reader, &mut dense, budgets)?;
            (metadata, records)
        }
        BodyFormat::Text => {
            let mut reader = ChunkedTraceReader::text(body, budgets.chunk_records);
            let records = observe_all(&mut reader, &mut dense, budgets)?;
            let metadata = reader.source().metadata().clone();
            (metadata, records)
        }
    };
    let stats = dense.into_trace_stats();
    let profile = ProgramProfile::from_stats(&stats);
    let table = JointClassTable::from_profile(&profile, scheme);
    let value = MapBuilder::new()
        .field("metadata", metadata.to_value())
        .field("records", records)
        .field("conditional", stats.total_conditional())
        .field("static_branches", profile.static_count() as u64)
        .field("scheme", scheme.to_value())
        .field(
            "taken_distribution",
            ClassDistribution::from_profile(&profile, Metric::TakenRate, scheme).to_value(),
        )
        .field(
            "transition_distribution",
            ClassDistribution::from_profile(&profile, Metric::TransitionRate, scheme).to_value(),
        )
        .field("joint", table.to_value())
        .field(
            "analysis",
            ClassificationAnalysis::from_table(&table).to_value(),
        )
        .field(
            "advisor",
            Value::List(
                HybridAdvisor::new(scheme)
                    .recommend(&table)
                    .iter()
                    .map(recommendation_to_value)
                    .collect(),
            ),
        )
        .build();
    Ok(AnalysisOutcome { value, records })
}

/// Streams `body` once through the fused multi-history engine and renders
/// the sweep document: the full [`SweepResult`] plus the class × history
/// miss matrix for the requested metric. Per-history class aggregation fans
/// out across `pool`.
///
/// # Errors
///
/// Same taxonomy as [`run_classify`].
#[allow(clippy::too_many_arguments)]
pub fn run_sweep<R: Read>(
    body: R,
    format: BodyFormat,
    scheme: BinningScheme,
    metric: Metric,
    family: PredictorFamily,
    histories: &[u32],
    budgets: Budgets,
    pool: &WorkStealingPool,
) -> Result<AnalysisOutcome, ServeError> {
    let mut dense = DenseTraceStats::new();
    let mut fused = family.fused_paper(histories);
    let engine = SimEngine::new();
    let budget_hit = Cell::new(false);
    let (metadata, results, records) = match format {
        BodyFormat::Btrt => {
            let mut reader =
                FastBtrtReader::new(body, budgets.chunk_records).map_err(ServeError::from_trace)?;
            let metadata = reader.metadata().clone();
            let results = engine.run_fused_streamed(
                Observing {
                    inner: &mut reader,
                    stats: &mut dense,
                    budgets,
                    budget_hit: &budget_hit,
                },
                &mut fused,
            );
            let records = reader.records_read();
            (metadata, results, records)
        }
        BodyFormat::Text => {
            let mut reader = ChunkedTraceReader::text(body, budgets.chunk_records);
            let results = engine.run_fused_streamed(
                Observing {
                    inner: &mut reader,
                    stats: &mut dense,
                    budgets,
                    budget_hit: &budget_hit,
                },
                &mut fused,
            );
            let records = reader.records_read();
            let metadata = reader.source().metadata().clone();
            (metadata, results, records)
        }
    };
    let results = match results {
        Ok(results) => results,
        Err(e) => {
            if budget_hit.get() {
                return Err(ServeError::BudgetExceeded {
                    what: "static branches",
                    limit: budgets.max_static_branches as u64,
                });
            }
            return Err(ServeError::from_trace(e));
        }
    };
    let stats = dense.into_trace_stats();
    let profile = ProgramProfile::from_stats(&stats);
    Ok(render_sweep(
        &metadata,
        records,
        stats.total_conditional(),
        &profile,
        family,
        histories,
        results,
        metric,
        scheme,
        pool,
    ))
}

/// A `/sweep` upload fully decoded, profiled and interned — the input the
/// batch tier ([`crate::batch::BatchScheduler`]) runs, as opposed to the
/// chunk stream [`run_sweep`] consumes in place.
#[derive(Debug)]
pub struct MaterializedSweep {
    /// The upload's trace metadata.
    pub metadata: TraceMetadata,
    /// The per-branch behaviour profile (classification input).
    pub profile: ProgramProfile,
    /// Conditional records observed.
    pub conditional: u64,
    /// Total records decoded.
    pub records: u64,
    /// The interned trace, shared with the batch scheduler.
    pub interned: Arc<InternedTrace>,
}

/// Decodes a sweep upload into a [`MaterializedSweep`], enforcing the same
/// per-chunk static-branch budget as the streaming path. Peak memory is the
/// whole record list — callers gate this path on the declared upload size.
///
/// # Errors
///
/// Same taxonomy as [`run_sweep`]: 422 on decode failures, 413 on budget
/// exhaustion.
pub fn materialize_sweep<R: Read>(
    body: R,
    format: BodyFormat,
    budgets: Budgets,
) -> Result<MaterializedSweep, ServeError> {
    let mut dense = DenseTraceStats::new();
    let mut collected: Vec<BranchRecord> = Vec::new();
    let (metadata, records) = match format {
        BodyFormat::Btrt => {
            let mut reader =
                FastBtrtReader::new(body, budgets.chunk_records).map_err(ServeError::from_trace)?;
            let metadata = reader.metadata().clone();
            let records = collect_all(&mut reader, &mut dense, &mut collected, budgets)?;
            (metadata, records)
        }
        BodyFormat::Text => {
            let mut reader = ChunkedTraceReader::text(body, budgets.chunk_records);
            let records = collect_all(&mut reader, &mut dense, &mut collected, budgets)?;
            let metadata = reader.source().metadata().clone();
            (metadata, records)
        }
    };
    let stats = dense.into_trace_stats();
    let interned = Trace::from_records(metadata.clone(), collected).intern();
    Ok(MaterializedSweep {
        metadata,
        profile: ProgramProfile::from_stats(&stats),
        conditional: stats.total_conditional(),
        records,
        interned: Arc::new(interned),
    })
}

/// Renders the sweep document for a materialized upload whose simulation ran
/// through the batch tier. Bit-identical to [`run_sweep`] over the same
/// bytes: the engine results are pinned equal by the sim crate's
/// `batch_equivalence` suite and everything else here derives from the same
/// stats pass.
pub fn sweep_document(
    upload: &MaterializedSweep,
    family: PredictorFamily,
    histories: &[u32],
    results: Vec<RunResult>,
    metric: Metric,
    scheme: BinningScheme,
    pool: &WorkStealingPool,
) -> AnalysisOutcome {
    render_sweep(
        &upload.metadata,
        upload.records,
        upload.conditional,
        &upload.profile,
        family,
        histories,
        results,
        metric,
        scheme,
        pool,
    )
}

/// The shared tail of both sweep paths: per-history class aggregation
/// (fanned out across `pool`) and the response document.
#[allow(clippy::too_many_arguments)]
fn render_sweep(
    metadata: &TraceMetadata,
    records: u64,
    conditional: u64,
    profile: &ProgramProfile,
    family: PredictorFamily,
    histories: &[u32],
    results: Vec<RunResult>,
    metric: Metric,
    scheme: BinningScheme,
    pool: &WorkStealingPool,
) -> AnalysisOutcome {
    let parts: Vec<(u32, RunResult)> = histories.iter().copied().zip(results).collect();
    let sweep = SweepResult::from_parts(family, parts);
    // Per-history class aggregation is independent across histories — the
    // post-processing fan-out the work-stealing pool exists for.
    let rows: Vec<(u32, ClassMissRates)> =
        pool.run(sweep.runs().iter().collect(), |_, (history, misses)| {
            (
                *history,
                ClassMissRates::aggregate(profile, metric, scheme, misses),
            )
        });
    let matrix = ClassHistoryMatrix::from_runs(&rows);
    let value = MapBuilder::new()
        .field("metadata", metadata.to_value())
        .field("records", records)
        .field("conditional", conditional)
        .field("static_branches", profile.static_count() as u64)
        .field("family", family.to_value())
        .field(
            "histories",
            Value::List(
                histories
                    .iter()
                    .map(|&h| Value::from(u64::from(h)))
                    .collect(),
            ),
        )
        .field("scheme", scheme.to_value())
        .field("metric", metric.to_value())
        .field("sweep", sweep.to_value())
        .field("class_history", matrix.to_value())
        .build();
    AnalysisOutcome { value, records }
}

/// Drains a chunk stream, folding every chunk's columns into the dense
/// statistics and enforcing the static-branch budget after each chunk. Chunk
/// buffers are recycled back to the stream, so steady-state decoding
/// allocates nothing.
fn observe_all<S: ChunkStream>(
    stream: &mut S,
    stats: &mut DenseTraceStats,
    budgets: Budgets,
) -> Result<u64, ServeError> {
    let mut records = 0u64;
    while let Some(chunk) = stream.pull() {
        let chunk = chunk.map_err(ServeError::from_trace)?;
        records += chunk.len() as u64;
        stats.observe_chunk(&chunk);
        stream.recycle(chunk);
        if stats.static_conditional_count() > budgets.max_static_branches {
            return Err(ServeError::BudgetExceeded {
                what: "static branches",
                limit: budgets.max_static_branches as u64,
            });
        }
    }
    Ok(records)
}

/// Drains a chunk stream like [`observe_all`], additionally collecting every
/// record for materialization.
fn collect_all<S: ChunkStream>(
    stream: &mut S,
    stats: &mut DenseTraceStats,
    collected: &mut Vec<BranchRecord>,
    budgets: Budgets,
) -> Result<u64, ServeError> {
    let mut records = 0u64;
    while let Some(chunk) = stream.pull() {
        let chunk = chunk.map_err(ServeError::from_trace)?;
        records += chunk.len() as u64;
        stats.observe_chunk(&chunk);
        collected.extend_from_slice(chunk.records());
        stream.recycle(chunk);
        if stats.static_conditional_count() > budgets.max_static_branches {
            return Err(ServeError::BudgetExceeded {
                what: "static branches",
                limit: budgets.max_static_branches as u64,
            });
        }
    }
    Ok(records)
}

/// Tees a chunk stream into [`DenseTraceStats`] while the fused engine
/// consumes it, and injects an error the moment the static-branch budget is
/// crossed (flagged out-of-band so the caller can map it to a 413, not a
/// 422). Recycled chunks are forwarded to the wrapped stream, so the engine's
/// buffer reuse survives the tee.
struct Observing<'a, S> {
    inner: &'a mut S,
    stats: &'a mut DenseTraceStats,
    budgets: Budgets,
    budget_hit: &'a Cell<bool>,
}

impl<S: ChunkStream> ChunkStream for Observing<'_, S> {
    fn pull(&mut self) -> Option<btr_trace::Result<TraceChunk>> {
        let chunk = self.inner.pull()?;
        if let Ok(chunk) = &chunk {
            self.stats.observe_chunk(chunk);
            if self.stats.static_conditional_count() > self.budgets.max_static_branches {
                self.budget_hit.set(true);
                return Some(Err(btr_trace::TraceError::Io(std::io::Error::other(
                    "static-branch budget exceeded",
                ))));
            }
        }
        Some(chunk)
    }

    fn recycle(&mut self, chunk: TraceChunk) {
        self.inner.recycle(chunk);
    }
}

/// Lowers one advisor recommendation to the wire data model.
fn recommendation_to_value(rec: &ClassRecommendation) -> Value {
    MapBuilder::new()
        .field("taken_class", rec.taken_class.index() as u64)
        .field("transition_class", rec.transition_class.index() as u64)
        .field("style", style_label(rec.style))
        .field("history_bits", u64::from(rec.history_bits))
        .field("dynamic_percent", rec.dynamic_percent)
        .build()
}

/// The stable string form of a component style.
fn style_label(style: ComponentStyle) -> &'static str {
    match style {
        ComponentStyle::StaticTaken => "static-taken",
        ComponentStyle::StaticNotTaken => "static-not-taken",
        ComponentStyle::ShortHistoryPAs => "short-history-pas",
        ComponentStyle::LongHistoryPAs => "long-history-pas",
        ComponentStyle::LongHistoryGAs => "long-history-gas",
        ComponentStyle::NonPredictive => "non-predictive",
    }
}

/// A trivial metadata document for error responses (kept here so every
/// response body, success or failure, is rendered through the same writer).
pub fn error_body(err: &ServeError) -> Value {
    MapBuilder::new()
        .field("error", err.code())
        .field("status", u64::from(err.status()))
        .field("detail", err.to_string())
        .build()
}

/// Convenience re-export: metadata type the endpoint documents embed.
pub type Metadata = TraceMetadata;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_parsing_accepts_the_documented_forms() {
        assert_eq!(
            parse_scheme(None).expect("default scheme"),
            BinningScheme::Paper11
        );
        assert_eq!(
            parse_scheme(Some("uniform8")).expect("uniform scheme"),
            BinningScheme::Uniform(8)
        );
        assert_eq!(
            parse_scheme(Some("chang6")).expect("chang scheme"),
            BinningScheme::Chang6
        );
        assert_eq!(
            parse_metric(Some("taken")).expect("metric"),
            Metric::TakenRate
        );
        assert_eq!(
            parse_family(Some("gas")).expect("family"),
            PredictorFamily::GAs
        );
        assert_eq!(
            parse_histories(Some("8,0,4,0"), PredictorFamily::PAs).expect("histories"),
            vec![0, 4, 8]
        );
        assert_eq!(
            parse_histories(None, PredictorFamily::PAs).expect("default"),
            vec![0, 1, 2, 4, 8]
        );
    }

    #[test]
    fn parameter_parsing_rejects_junk_with_400s() {
        for err in [
            parse_scheme(Some("uniform1")).expect_err("too few classes"),
            parse_scheme(Some("uniform999")).expect_err("too many classes"),
            parse_scheme(Some("nonsense")).expect_err("unknown scheme"),
            parse_metric(Some("swing")).expect_err("unknown metric"),
            parse_family(Some("sas")).expect_err("unknown family"),
            parse_histories(Some("2,banana"), PredictorFamily::PAs).expect_err("junk entry"),
            parse_histories(Some("99"), PredictorFamily::PAs).expect_err("history too long"),
            BodyFormat::from_content_type(Some("application/json"))
                .map(|_| ())
                .expect_err("json uploads are not traces"),
        ] {
            assert_eq!(err.status(), 400, "{err}");
        }
    }

    #[test]
    fn scheme_params_roundtrip() {
        for scheme in [
            BinningScheme::Paper11,
            BinningScheme::Chang6,
            BinningScheme::Uniform(5),
        ] {
            assert_eq!(
                parse_scheme(Some(&scheme_param(scheme))).expect("roundtrip"),
                scheme
            );
        }
    }
}
