//! Batch admission for `/sweep`: coalescing concurrent sweeps into one
//! SWAR pass.
//!
//! Every materialized sweep request becomes one **lane** submitted to the
//! process-wide [`BatchScheduler`]. The first submitter finding no batch in
//! progress drains everything queued — its own lane plus whatever arrived
//! concurrently — and runs the whole set as a *single*
//! [`SimEngine::run_batch`] task. Lanes are grouped by upload digest, so
//! concurrent sweeps of the **same trace** (different families or history
//! sets) share one first-level pass per block through the bit-sliced SWAR
//! tier, instead of each request re-walking the upload; distinct uploads
//! still amortize the task setup and the derived counter table. Submissions
//! arriving while a batch is running queue for the next one — the scheduler
//! never blocks admission, it only widens the batch.
//!
//! Results are delivered per lane and are bit-identical to a standalone
//! [`SimEngine::run_fused`] of that lane (pinned by the sim crate's
//! `batch_equivalence` suite), so batching is invisible in the response
//! bytes — the response cache stays consistent across batch compositions.

use btr_predictors::fused::FusedSweepPredictor;
use btr_sim::engine::{BatchLane, RunResult, SimEngine};
use btr_trace::InternedTrace;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Locks a mutex, recovering the data from a poisoned lock: queue and result
/// cells stay structurally valid across panics in peer submitters, so one
/// panicking connection thread must not wedge the scheduler.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One queued sweep: a trace, the fused predictor to run over it, and the
/// cell its results land in.
struct PendingLane {
    digest: String,
    trace: Arc<InternedTrace>,
    fused: FusedSweepPredictor,
    slot: Arc<Mutex<Option<Vec<RunResult>>>>,
}

impl std::fmt::Debug for PendingLane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PendingLane")
            .field("digest", &self.digest)
            .finish_non_exhaustive()
    }
}

#[derive(Debug, Default)]
struct SchedulerState {
    pending: Vec<PendingLane>,
    running: bool,
}

/// Combines concurrently-submitted sweeps into single `run_batch` tasks.
#[derive(Debug, Default)]
pub struct BatchScheduler {
    state: Mutex<SchedulerState>,
    landed: Condvar,
}

impl BatchScheduler {
    /// An idle scheduler.
    pub fn new() -> Self {
        BatchScheduler::default()
    }

    /// Runs one sweep through the shared batch tier, blocking until its
    /// results are ready. The calling thread may end up executing the whole
    /// batch (first in wins) or just waiting for a concurrent leader; either
    /// way the returned results are bit-identical to a standalone
    /// [`SimEngine::run_fused`] of this lane.
    ///
    /// `digest` is the upload's content digest: lanes sharing it are bound
    /// to one trace slot in the batch, which is what lets the SWAR tier
    /// share its first-level pass across them. Callers must therefore only
    /// pass equal digests for byte-identical uploads.
    pub fn run(
        &self,
        digest: String,
        trace: Arc<InternedTrace>,
        fused: FusedSweepPredictor,
    ) -> Vec<RunResult> {
        let slot = Arc::new(Mutex::new(None));
        lock(&self.state).pending.push(PendingLane {
            digest,
            trace,
            fused,
            slot: Arc::clone(&slot),
        });
        loop {
            // Claim a batch if nobody is running one; otherwise wait for the
            // current leader to land. The wait is bounded so a lost wakeup
            // degrades to polling, never a hang.
            let claimed = {
                let mut state = lock(&self.state);
                if !state.running && !state.pending.is_empty() {
                    state.running = true;
                    Some(std::mem::take(&mut state.pending))
                } else {
                    None
                }
            };
            if let Some(batch) = claimed {
                Self::execute(batch);
                lock(&self.state).running = false;
                self.landed.notify_all();
            } else {
                let state = lock(&self.state);
                drop(
                    self.landed
                        .wait_timeout(state, Duration::from_millis(20))
                        .unwrap_or_else(PoisonError::into_inner),
                );
            }
            if let Some(results) = lock(&slot).take() {
                return results;
            }
        }
    }

    /// Runs one drained batch: dedupes traces by digest, fans the lanes into
    /// a single [`SimEngine::run_batch`] call, and delivers each lane's
    /// results into its slot.
    fn execute(batch: Vec<PendingLane>) {
        let mut digests: Vec<String> = Vec::new();
        let mut traces: Vec<Arc<InternedTrace>> = Vec::new();
        let mut lanes = Vec::with_capacity(batch.len());
        let mut slots = Vec::with_capacity(batch.len());
        for lane in batch {
            let index = match digests.iter().position(|d| *d == lane.digest) {
                Some(index) => index,
                None => {
                    digests.push(lane.digest);
                    traces.push(lane.trace);
                    traces.len() - 1
                }
            };
            lanes.push(BatchLane::new(index, lane.fused));
            slots.push(lane.slot);
        }
        let refs: Vec<&InternedTrace> = traces.iter().map(Arc::as_ref).collect();
        let results = SimEngine::new().run_batch(&refs, lanes);
        for (slot, lane_results) in slots.into_iter().zip(results) {
            *lock(&slot) = Some(lane_results);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btr_sim::config::PredictorFamily;
    use btr_trace::{BranchAddr, BranchRecord, Outcome, Trace, TraceMetadata};

    fn trace(records: usize, sites: u64, seed: u64) -> Arc<InternedTrace> {
        let mut out = Vec::with_capacity(records);
        let mut state = seed | 1;
        for i in 0..records {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = BranchAddr::new(0x1000 + (state >> 40) % sites * 4);
            out.push(BranchRecord::conditional(
                addr,
                Outcome::from_bool((state >> 33) & 1 == 1 || i % 7 == 0),
            ));
        }
        Arc::new(Trace::from_records(TraceMetadata::named("batch"), out).intern())
    }

    #[test]
    fn a_single_submission_matches_a_standalone_fused_run() {
        let scheduler = BatchScheduler::new();
        let trace = trace(4000, 37, 5);
        let histories = vec![0u32, 2, 8];
        let results = scheduler.run(
            "d0".into(),
            Arc::clone(&trace),
            PredictorFamily::PAs.fused_paper(&histories),
        );
        let reference =
            SimEngine::new().run_fused(&trace, &mut PredictorFamily::PAs.fused_paper(&histories));
        assert_eq!(results, reference);
    }

    #[test]
    fn concurrent_submissions_with_shared_and_distinct_digests_all_match() {
        let scheduler = Arc::new(BatchScheduler::new());
        let shared = trace(3000, 53, 11);
        let other = trace(1700, 19, 23);
        // (digest, trace, family, histories): two lanes share an upload.
        let jobs: Vec<(&str, Arc<InternedTrace>, PredictorFamily, Vec<u32>)> = vec![
            (
                "same",
                Arc::clone(&shared),
                PredictorFamily::PAs,
                vec![0, 4],
            ),
            (
                "same",
                Arc::clone(&shared),
                PredictorFamily::GAs,
                vec![1, 8],
            ),
            ("other", Arc::clone(&other), PredictorFamily::PAs, vec![2]),
            (
                "same",
                Arc::clone(&shared),
                PredictorFamily::PAs,
                vec![3, 5],
            ),
        ];
        let engine = SimEngine::new();
        let references: Vec<Vec<RunResult>> = jobs
            .iter()
            .map(|(_, t, family, histories)| {
                engine.run_fused(t, &mut family.fused_paper(histories))
            })
            .collect();
        let outputs: Vec<Vec<RunResult>> = std::thread::scope(|scope| {
            let handles: Vec<_> = jobs
                .iter()
                .map(|(digest, t, family, histories)| {
                    let scheduler = Arc::clone(&scheduler);
                    scope.spawn(move || {
                        scheduler.run(
                            (*digest).to_string(),
                            Arc::clone(t),
                            family.fused_paper(histories),
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("submitter threads do not panic"))
                .collect()
        });
        assert_eq!(outputs, references);
    }
}
