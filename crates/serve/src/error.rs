//! The daemon's request-failure taxonomy.
//!
//! Every failure a request can suffer maps to exactly one HTTP status, and
//! every status the server emits is produced through [`ServeError`] — the
//! smoke suite and the e2e tests rely on malformed or hostile input always
//! surfacing as a typed 4xx/5xx response, never as a panic or a silently
//! dropped connection.

use btr_trace::TraceError;
use btr_wire::WireError;
use std::fmt;
use std::io;

/// A request-scoped failure, carrying the HTTP status it renders as.
#[derive(Debug)]
pub enum ServeError {
    /// The request line, headers or parameters could not be understood (400).
    BadRequest(String),
    /// No route matches the request path (404).
    NotFound(String),
    /// The path exists but not under this method (405).
    MethodNotAllowed(String),
    /// The client did not finish sending within the request timeout (408).
    Timeout,
    /// An upload arrived without a `Content-Length` header (411).
    LengthRequired,
    /// The declared upload size exceeds the per-connection budget (413).
    PayloadTooLarge {
        /// Declared body size in bytes.
        declared: u64,
        /// The configured ceiling it exceeded.
        limit: u64,
    },
    /// The trace body was syntactically or semantically undecodable (422).
    UnprocessableTrace(String),
    /// The upload exhausted a per-connection resource budget other than raw
    /// bytes — e.g. distinct static branches, which size the interning
    /// tables (413).
    BudgetExceeded {
        /// The budgeted resource, e.g. `"static branches"`.
        what: &'static str,
        /// The configured ceiling.
        limit: u64,
    },
    /// The request head exceeded the header-size cap (431).
    HeaderTooLarge {
        /// The configured cap in bytes.
        limit: usize,
    },
    /// The admission gate is full; the client should retry later (503).
    Busy {
        /// Analyses in flight when the request was rejected.
        active: usize,
    },
    /// A connection-level I/O failure; no response may be deliverable (500).
    Io(io::Error),
}

impl ServeError {
    /// The HTTP status code this error renders as.
    pub fn status(&self) -> u16 {
        match self {
            ServeError::BadRequest(_) => 400,
            ServeError::NotFound(_) => 404,
            ServeError::MethodNotAllowed(_) => 405,
            ServeError::Timeout => 408,
            ServeError::LengthRequired => 411,
            ServeError::PayloadTooLarge { .. } => 413,
            ServeError::BudgetExceeded { .. } => 413,
            ServeError::UnprocessableTrace(_) => 422,
            ServeError::HeaderTooLarge { .. } => 431,
            ServeError::Busy { .. } => 503,
            ServeError::Io(_) => 500,
        }
    }

    /// A short machine-readable code for the JSON error body.
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::BadRequest(_) => "bad-request",
            ServeError::NotFound(_) => "not-found",
            ServeError::MethodNotAllowed(_) => "method-not-allowed",
            ServeError::Timeout => "timeout",
            ServeError::LengthRequired => "length-required",
            ServeError::PayloadTooLarge { .. } => "payload-too-large",
            ServeError::BudgetExceeded { .. } => "budget-exceeded",
            ServeError::UnprocessableTrace(_) => "unprocessable-trace",
            ServeError::HeaderTooLarge { .. } => "header-too-large",
            ServeError::Busy { .. } => "busy",
            ServeError::Io(_) => "io",
        }
    }

    /// Classifies a trace-decode failure: client-caused malformations become
    /// 422s, timeouts become 408s, transport failures stay I/O errors.
    pub fn from_trace(e: TraceError) -> ServeError {
        match e {
            TraceError::Io(io) => ServeError::from_io(io),
            other => ServeError::UnprocessableTrace(other.to_string()),
        }
    }

    /// Classifies an I/O failure seen while reading the request: a socket
    /// read timeout is the client's fault (408), anything else is transport.
    pub fn from_io(e: io::Error) -> ServeError {
        match e.kind() {
            io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => ServeError::Timeout,
            _ => ServeError::Io(e),
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::BadRequest(reason) => write!(f, "bad request: {reason}"),
            ServeError::NotFound(path) => write!(f, "no route for {path}"),
            ServeError::MethodNotAllowed(method) => {
                write!(f, "method {method} not allowed here")
            }
            ServeError::Timeout => f.write_str("request timed out"),
            ServeError::LengthRequired => f.write_str("uploads require Content-Length"),
            ServeError::PayloadTooLarge { declared, limit } => {
                write!(f, "declared body of {declared} bytes exceeds limit {limit}")
            }
            ServeError::UnprocessableTrace(reason) => {
                write!(f, "trace body undecodable: {reason}")
            }
            ServeError::BudgetExceeded { what, limit } => {
                write!(f, "upload exceeds the {what} budget of {limit}")
            }
            ServeError::HeaderTooLarge { limit } => {
                write!(f, "request head exceeds {limit} bytes")
            }
            ServeError::Busy { active } => {
                write!(f, "server busy ({active} analyses in flight); retry later")
            }
            ServeError::Io(e) => write!(f, "i/o failure: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::from_io(e)
    }
}

impl From<TraceError> for ServeError {
    fn from(e: TraceError) -> Self {
        ServeError::from_trace(e)
    }
}

impl From<WireError> for ServeError {
    fn from(e: WireError) -> Self {
        ServeError::BadRequest(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_maps_to_a_distinct_meaningful_status() {
        let cases: Vec<(ServeError, u16)> = vec![
            (ServeError::BadRequest("x".into()), 400),
            (ServeError::NotFound("/nope".into()), 404),
            (ServeError::MethodNotAllowed("PUT".into()), 405),
            (ServeError::Timeout, 408),
            (
                ServeError::PayloadTooLarge {
                    declared: 2,
                    limit: 1,
                },
                413,
            ),
            (ServeError::LengthRequired, 411),
            (ServeError::UnprocessableTrace("bad magic".into()), 422),
            (ServeError::HeaderTooLarge { limit: 64 }, 431),
            (ServeError::Busy { active: 4 }, 503),
            (ServeError::Io(io::Error::other("down")), 500),
        ];
        for (err, status) in cases {
            assert_eq!(err.status(), status, "{err}");
            assert!(!err.code().is_empty());
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn trace_and_io_failures_classify_by_cause() {
        let timeout = io::Error::new(io::ErrorKind::TimedOut, "slow");
        assert_eq!(ServeError::from_io(timeout).status(), 408);
        let refused = io::Error::new(io::ErrorKind::ConnectionReset, "gone");
        assert_eq!(ServeError::from_io(refused).status(), 500);
        let truncated = TraceError::UnexpectedEof {
            context: "record".into(),
        };
        assert_eq!(ServeError::from_trace(truncated).status(), 422);
        let wrapped = TraceError::Io(io::Error::new(io::ErrorKind::TimedOut, "slow"));
        assert_eq!(ServeError::from_trace(wrapped).status(), 408);
    }
}
