//! Serving telemetry: lock-free counters and the `/metrics` snapshot.
//!
//! All wall-clock use in the serving crate lives in this module (the
//! `Instant`s behind uptime and latency accounting) and is *telemetry only*:
//! no duration ever influences an analysis result or a cached response body,
//! so determinism of the analysis artifacts is untouched. The snapshot
//! serializes through [`Wire`], reusing the same JSON writer the bench
//! artifacts use.

use btr_wire::{MapBuilder, Value, Wire, WireError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Live counters, updated lock-free from every connection thread.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    requests: AtomicU64,
    responses_2xx: AtomicU64,
    responses_4xx: AtomicU64,
    responses_5xx: AtomicU64,
    rejected_busy: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    coalesced_hits: AtomicU64,
    batched_lanes: AtomicU64,
    bytes_streamed: AtomicU64,
    records_decoded: AtomicU64,
    active_analyses: AtomicU64,
    request_micros: AtomicU64,
}

impl Metrics {
    /// Fresh counters, with uptime anchored at construction.
    pub fn new() -> Self {
        Metrics {
            started: Instant::now(),
            requests: AtomicU64::new(0),
            responses_2xx: AtomicU64::new(0),
            responses_4xx: AtomicU64::new(0),
            responses_5xx: AtomicU64::new(0),
            rejected_busy: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            coalesced_hits: AtomicU64::new(0),
            batched_lanes: AtomicU64::new(0),
            bytes_streamed: AtomicU64::new(0),
            records_decoded: AtomicU64::new(0),
            active_analyses: AtomicU64::new(0),
            request_micros: AtomicU64::new(0),
        }
    }

    /// Marks a request received and starts its latency clock.
    pub fn begin_request(&self) -> RequestTimer {
        self.requests.fetch_add(1, Ordering::Relaxed);
        RequestTimer {
            started: Instant::now(),
        }
    }

    /// Folds a finished request into the counters, classifying by status.
    pub fn finish_request(&self, timer: RequestTimer, status: u16) {
        let micros = timer.started.elapsed().as_micros().min(u64::MAX as u128) as u64;
        self.request_micros.fetch_add(micros, Ordering::Relaxed);
        let bucket = match status {
            200..=299 => &self.responses_2xx,
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        };
        bucket.fetch_add(1, Ordering::Relaxed);
        if status == 503 {
            self.rejected_busy.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a response served from the content-addressed cache.
    pub fn cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an analysis that had to run because no cache entry matched.
    pub fn cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request served by waiting on a concurrent identical
    /// analysis instead of running its own (a subset of cache hits).
    pub fn coalesced_hit(&self) {
        self.coalesced_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a sweep lane admitted through the shared batch scheduler.
    pub fn batched_lane(&self) {
        self.batched_lanes.fetch_add(1, Ordering::Relaxed);
    }

    /// Accounts bytes streamed through an upload body.
    pub fn add_bytes_streamed(&self, bytes: u64) {
        self.bytes_streamed.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Accounts records decoded from upload bodies.
    pub fn add_records_decoded(&self, records: u64) {
        self.records_decoded.fetch_add(records, Ordering::Relaxed);
    }

    /// Marks an analysis entering the admission-gated section; the returned
    /// guard decrements on drop, so the gauge survives error paths.
    pub fn analysis_guard(&self) -> AnalysisGuard<'_> {
        self.active_analyses.fetch_add(1, Ordering::Relaxed);
        AnalysisGuard { metrics: self }
    }

    /// Analyses currently in flight (the admission-gate depth).
    pub fn active_analyses(&self) -> u64 {
        self.active_analyses.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            uptime_ms: self.started.elapsed().as_millis().min(u64::MAX as u128) as u64,
            requests: self.requests.load(Ordering::Relaxed),
            responses_2xx: self.responses_2xx.load(Ordering::Relaxed),
            responses_4xx: self.responses_4xx.load(Ordering::Relaxed),
            responses_5xx: self.responses_5xx.load(Ordering::Relaxed),
            rejected_busy: self.rejected_busy.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            coalesced_hits: self.coalesced_hits.load(Ordering::Relaxed),
            batched_lanes: self.batched_lanes.load(Ordering::Relaxed),
            bytes_streamed: self.bytes_streamed.load(Ordering::Relaxed),
            records_decoded: self.records_decoded.load(Ordering::Relaxed),
            active_analyses: self.active_analyses.load(Ordering::Relaxed),
            request_micros: self.request_micros.load(Ordering::Relaxed),
        }
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

/// Latency clock for one request; fold back in with
/// [`Metrics::finish_request`].
#[derive(Debug)]
pub struct RequestTimer {
    started: Instant,
}

/// Decrements the active-analysis gauge on drop.
#[derive(Debug)]
pub struct AnalysisGuard<'a> {
    metrics: &'a Metrics,
}

impl Drop for AnalysisGuard<'_> {
    fn drop(&mut self) {
        self.metrics.active_analyses.fetch_sub(1, Ordering::Relaxed);
    }
}

/// What `/metrics` returns: a frozen copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// Requests whose head parsed far enough to be routed.
    pub requests: u64,
    /// Responses in the 2xx range.
    pub responses_2xx: u64,
    /// Responses in the 4xx range.
    pub responses_4xx: u64,
    /// Responses in the 5xx range (503 rejections included).
    pub responses_5xx: u64,
    /// Requests turned away by admission control (a subset of 5xx).
    pub rejected_busy: u64,
    /// Responses answered from the content-addressed cache.
    pub cache_hits: u64,
    /// Analyses that ran because no cache entry matched.
    pub cache_misses: u64,
    /// Requests served by coalescing onto a concurrent identical analysis
    /// (a subset of `cache_hits`).
    pub coalesced_hits: u64,
    /// Sweep lanes admitted through the shared SWAR batch scheduler.
    pub batched_lanes: u64,
    /// Upload bytes streamed through the decoders.
    pub bytes_streamed: u64,
    /// Trace records decoded from uploads.
    pub records_decoded: u64,
    /// Analyses in flight at snapshot time.
    pub active_analyses: u64,
    /// Total request-handling time in microseconds, across all requests.
    pub request_micros: u64,
}

impl Wire for MetricsSnapshot {
    fn to_value(&self) -> Value {
        MapBuilder::new()
            .field("uptime_ms", self.uptime_ms)
            .field("requests", self.requests)
            .field("responses_2xx", self.responses_2xx)
            .field("responses_4xx", self.responses_4xx)
            .field("responses_5xx", self.responses_5xx)
            .field("rejected_busy", self.rejected_busy)
            .field("cache_hits", self.cache_hits)
            .field("cache_misses", self.cache_misses)
            .field("coalesced_hits", self.coalesced_hits)
            .field("batched_lanes", self.batched_lanes)
            .field("bytes_streamed", self.bytes_streamed)
            .field("records_decoded", self.records_decoded)
            .field("active_analyses", self.active_analyses)
            .field("request_micros", self.request_micros)
            .build()
    }

    fn from_value(value: &Value) -> Result<Self, WireError> {
        Ok(MetricsSnapshot {
            uptime_ms: value.get("uptime_ms")?.as_u64()?,
            requests: value.get("requests")?.as_u64()?,
            responses_2xx: value.get("responses_2xx")?.as_u64()?,
            responses_4xx: value.get("responses_4xx")?.as_u64()?,
            responses_5xx: value.get("responses_5xx")?.as_u64()?,
            rejected_busy: value.get("rejected_busy")?.as_u64()?,
            cache_hits: value.get("cache_hits")?.as_u64()?,
            cache_misses: value.get("cache_misses")?.as_u64()?,
            coalesced_hits: value.get("coalesced_hits")?.as_u64()?,
            batched_lanes: value.get("batched_lanes")?.as_u64()?,
            bytes_streamed: value.get("bytes_streamed")?.as_u64()?,
            records_decoded: value.get("records_decoded")?.as_u64()?,
            active_analyses: value.get("active_analyses")?.as_u64()?,
            request_micros: value.get("request_micros")?.as_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_classify_statuses_and_track_cache_traffic() {
        let m = Metrics::new();
        let t = m.begin_request();
        m.finish_request(t, 200);
        let t = m.begin_request();
        m.finish_request(t, 422);
        let t = m.begin_request();
        m.finish_request(t, 503);
        m.cache_hit();
        m.cache_miss();
        m.cache_miss();
        m.add_bytes_streamed(100);
        m.add_records_decoded(7);
        let snap = m.snapshot();
        assert_eq!(snap.requests, 3);
        assert_eq!(snap.responses_2xx, 1);
        assert_eq!(snap.responses_4xx, 1);
        assert_eq!(snap.responses_5xx, 1);
        assert_eq!(snap.rejected_busy, 1);
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.cache_misses, 2);
        assert_eq!(snap.bytes_streamed, 100);
        assert_eq!(snap.records_decoded, 7);
    }

    #[test]
    fn analysis_guard_releases_on_drop_even_mid_panic_free_error_path() {
        let m = Metrics::new();
        {
            let _g1 = m.analysis_guard();
            let _g2 = m.analysis_guard();
            assert_eq!(m.active_analyses(), 2);
        }
        assert_eq!(m.active_analyses(), 0);
    }

    #[test]
    fn snapshots_roundtrip_through_both_codecs() {
        let snap = MetricsSnapshot {
            uptime_ms: 1,
            requests: 2,
            responses_2xx: 3,
            responses_4xx: 4,
            responses_5xx: 5,
            rejected_busy: 6,
            cache_hits: 7,
            cache_misses: 8,
            coalesced_hits: 13,
            batched_lanes: 14,
            bytes_streamed: 9,
            records_decoded: 10,
            active_analyses: 11,
            request_micros: 12,
        };
        let json = snap.to_json().expect("snapshot encodes as JSON");
        assert_eq!(
            MetricsSnapshot::from_json(&json).expect("snapshot decodes"),
            snap
        );
        assert_eq!(
            MetricsSnapshot::from_btrw(&snap.to_btrw()).expect("snapshot decodes"),
            snap
        );
    }
}
