//! The `btrd` accept loop: routing, admission control, caching, teardown.
//!
//! One OS thread per connection, one request per connection
//! (`Connection: close`), socket read/write timeouts for clean teardown of
//! stalled peers, and two independent brakes on resource use:
//!
//! * **Admission control** — at most `max_concurrent` analyses in flight;
//!   excess requests get an immediate 503 with `Retry-After`, never a hang.
//! * **Per-connection memory budget** — uploads stream through the chunked
//!   decoder under a byte cap (`max_upload_bytes`, enforced before reading),
//!   a chunk bound (`chunk_records`) and a distinct-branch cap
//!   (`max_static_branches`), so a connection's peak memory is one chunk
//!   plus bounded tables regardless of upload size.
//!
//! Successful analyses are cached content-addressed — see [`crate::cache`] —
//! and replayed for clients that present the upload's digest.

use crate::analysis::{self, Budgets};
use crate::batch::BatchScheduler;
use crate::cache::{CacheKey, ResponseCache};
use crate::digest::DigestReader;
use crate::error::ServeError;
use crate::flight::{FlightOutcome, FlightTable};
use crate::http::{LimitedReader, Request, Response};
use crate::metrics::{Metrics, MetricsSnapshot};
use btr_wire::{json, MapBuilder, Value, Wire};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use stealpool::WorkStealingPool;

/// Everything tunable about a `btrd` instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:0` for an ephemeral port.
    pub addr: String,
    /// Worker threads for per-request post-processing fan-out.
    pub analysis_threads: usize,
    /// Analyses admitted concurrently; excess requests are 503ed.
    pub max_concurrent: usize,
    /// Ceiling on a single upload's declared byte size.
    pub max_upload_bytes: u64,
    /// Records per decoded chunk (the per-connection streaming buffer).
    pub chunk_records: usize,
    /// Ceiling on distinct static conditional branches per upload.
    pub max_static_branches: usize,
    /// Socket read/write timeout; `Duration::ZERO` disables timeouts.
    pub request_timeout: Duration,
    /// Entries in the content-addressed response cache (0 disables).
    pub cache_entries: usize,
    /// Sweep uploads declaring at most this many bytes are materialized and
    /// run through the shared SWAR batch scheduler, which coalesces
    /// concurrent sweeps into one engine pass; larger uploads keep the
    /// constant-memory streaming path. Set to 0 to force streaming.
    pub batch_upload_bytes: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            analysis_threads: 2,
            max_concurrent: 4,
            max_upload_bytes: 256 << 20,
            chunk_records: 16 * 1024,
            max_static_branches: 1 << 20,
            request_timeout: Duration::from_secs(10),
            cache_entries: 64,
            batch_upload_bytes: 16 << 20,
        }
    }
}

/// State shared by the accept loop, every connection thread and any handles.
#[derive(Debug)]
struct Shared {
    config: ServerConfig,
    metrics: Metrics,
    cache: ResponseCache,
    flights: FlightTable,
    batch: BatchScheduler,
    pool: WorkStealingPool,
    active: AtomicUsize,
    connections: AtomicUsize,
    shutdown: AtomicBool,
    addr: SocketAddr,
}

/// A bound-but-not-yet-running server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// A cloneable handle for shutting a running server down and reading its
/// telemetry from another thread.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A point-in-time copy of the serving counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Asks the accept loop to exit, poking it with one throwaway
    /// connection so a blocked `accept` wakes up.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // The poke is best-effort: if the listener is already gone the loop
        // has exited and there is nothing to wake.
        let _ = TcpStream::connect(self.shared.addr);
    }
}

impl Server {
    /// Binds the listener without starting to serve.
    ///
    /// # Errors
    ///
    /// Fails if the address cannot be bound.
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let pool = WorkStealingPool::new(config.analysis_threads.max(1));
        let cache = ResponseCache::new(config.cache_entries);
        let shared = Arc::new(Shared {
            config,
            metrics: Metrics::new(),
            cache,
            flights: FlightTable::new(),
            batch: BatchScheduler::new(),
            pool,
            active: AtomicUsize::new(0),
            connections: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            addr,
        });
        Ok(Server { listener, shared })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A handle for shutdown and telemetry.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Binds and serves on a background thread, returning the handle and the
    /// join handle. The server exits when [`ServerHandle::shutdown`] is
    /// called.
    ///
    /// # Errors
    ///
    /// Fails if binding or thread spawning fails.
    pub fn spawn(
        config: ServerConfig,
    ) -> io::Result<(ServerHandle, std::thread::JoinHandle<io::Result<()>>)> {
        let server = Server::bind(config)?;
        let handle = server.handle();
        let join = std::thread::Builder::new()
            .name("btrd-accept".into())
            .spawn(move || server.run())?;
        Ok((handle, join))
    }

    /// Runs the accept loop until [`ServerHandle::shutdown`].
    ///
    /// # Errors
    ///
    /// Returns the first fatal listener error; per-connection failures are
    /// absorbed.
    pub fn run(self) -> io::Result<()> {
        // Beyond this many live connection threads, new connections are
        // turned away with an unconditional 503 before any parsing: the
        // admission gate bounds *analyses*, this bounds *threads*.
        let max_connections = self.shared.config.max_concurrent * 4 + 4;
        loop {
            let (stream, _) = match self.listener.accept() {
                Ok(conn) => conn,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if self.shared.shutdown.load(Ordering::SeqCst) {
                return Ok(());
            }
            let shared = Arc::clone(&self.shared);
            if shared.connections.load(Ordering::SeqCst) >= max_connections {
                overloaded_close(stream, &shared);
                continue;
            }
            shared.connections.fetch_add(1, Ordering::SeqCst);
            let spawned = std::thread::Builder::new()
                .name("btrd-conn".into())
                .spawn(move || {
                    handle_connection(stream, &shared);
                    shared.connections.fetch_sub(1, Ordering::SeqCst);
                });
            if let Err(_e) = spawned {
                // Thread exhaustion: undo the count; the stream drops closed.
                self.shared.connections.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
}

/// Rejects a connection that arrived past the thread cap: one raw 503,
/// no parsing, no thread.
fn overloaded_close(mut stream: TcpStream, shared: &Shared) {
    let timer = shared.metrics.begin_request();
    let err = ServeError::Busy {
        active: shared.active.load(Ordering::SeqCst),
    };
    let resp = error_response(&err);
    let _ = resp.write_to(&mut stream);
    shared.metrics.finish_request(timer, resp.status);
}

/// Serves one connection: parse, route, respond, close.
fn handle_connection(stream: TcpStream, shared: &Shared) {
    let timeout = shared.config.request_timeout;
    if !timeout.is_zero() {
        let _ = stream.set_read_timeout(Some(timeout));
        let _ = stream.set_write_timeout(Some(timeout));
    }
    let timer = shared.metrics.begin_request();
    let mut reader = BufReader::new(stream);
    let response = match Request::parse(&mut reader) {
        Ok(request) => match route(&request, &mut reader, shared) {
            Ok(response) => response,
            Err(e) => error_response(&e),
        },
        Err(e) => error_response(&e),
    };
    let status = response.status;
    let _ = response.write_to(reader.get_mut());
    let _ = reader.get_mut().shutdown(std::net::Shutdown::Both);
    shared.metrics.finish_request(timer, status);
}

/// Renders a [`ServeError`] as its JSON error document.
fn error_response(err: &ServeError) -> Response {
    let body = json::to_string(&analysis::error_body(err))
        .unwrap_or_else(|_| format!("{{\"error\":\"{}\"}}", err.code()));
    let mut resp = Response::json(err.status(), body);
    if matches!(err, ServeError::Busy { .. }) {
        resp = resp.with_header("Retry-After", "1");
    }
    resp
}

/// Dispatches a parsed request to its endpoint.
fn route(
    request: &Request,
    body: &mut BufReader<TcpStream>,
    shared: &Shared,
) -> Result<Response, ServeError> {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Ok(encode(
            MapBuilder::new().field("ok", true).build(),
            wants_btrw(request),
            200,
        )),
        ("GET", "/metrics") => Ok(encode(
            shared.metrics.snapshot().to_value(),
            wants_btrw(request),
            200,
        )),
        ("POST", "/classify") | ("POST", "/sweep") => analyze(request, body, shared),
        (_, "/healthz" | "/metrics" | "/classify" | "/sweep") => {
            Err(ServeError::MethodNotAllowed(request.method.clone()))
        }
        (_, path) => Err(ServeError::NotFound(path.to_string())),
    }
}

/// Whether the client asked for `BTRW` instead of JSON.
fn wants_btrw(request: &Request) -> bool {
    request
        .header("accept")
        .is_some_and(|accept| accept.contains("application/x-btrw"))
}

/// Encodes a response document per the negotiated format.
fn encode(value: Value, btrw: bool, status: u16) -> Response {
    if btrw {
        Response::btrw(status, value.to_btrw())
    } else {
        match value.to_json() {
            Ok(body) => Response::json(status, body),
            // Unreachable for the documents we build (no non-finite floats
            // survive `Value::opt_f64`), but never panic on a response path.
            Err(e) => error_response(&ServeError::Io(io::Error::other(e.to_string()))),
        }
    }
}

/// The shared upload path behind `/classify` and `/sweep`: cache probe,
/// admission, streaming analysis, cache fill.
fn analyze(
    request: &Request,
    body: &mut BufReader<TcpStream>,
    shared: &Shared,
) -> Result<Response, ServeError> {
    let btrw = wants_btrw(request);
    let format = analysis::BodyFormat::from_content_type(request.header("content-type"))?;
    let scheme = analysis::parse_scheme(request.query_param("scheme"))?;
    // The canonical parameter string doubles as the cache-key params: it
    // pins everything that shapes the response bytes, including encoding.
    let params = match request.path.as_str() {
        "/classify" => format!(
            "/classify?scheme={}&accept={}",
            analysis::scheme_param(scheme),
            if btrw { "btrw" } else { "json" },
        ),
        _ => {
            let family = analysis::parse_family(request.query_param("family"))?;
            let metric = analysis::parse_metric(request.query_param("metric"))?;
            let histories = analysis::parse_histories(request.query_param("histories"), family)?;
            format!(
                "/sweep?family={}&histories={}&metric={}&scheme={}&accept={}",
                family.label().to_ascii_lowercase(),
                histories
                    .iter()
                    .map(u32::to_string)
                    .collect::<Vec<String>>()
                    .join(","),
                metric.label().to_ascii_lowercase(),
                analysis::scheme_param(scheme),
                if btrw { "btrw" } else { "json" },
            )
        }
    };

    // Digest fast path: a client that already knows its upload's digest is
    // answered from the cache without the body ever being read. Safe because
    // entries are only inserted under server-computed digests.
    let mut flight = None;
    if let Some(client_digest) = request.header("x-btr-digest") {
        let key = CacheKey {
            digest: client_digest.to_ascii_lowercase(),
            params: params.clone(),
        };
        if let Some(cached) = shared.cache.get(&key) {
            shared.metrics.cache_hit();
            return Ok((*cached).clone().with_header("X-Btr-Cache", "hit"));
        }
        // Single-flight: concurrent uploads of the same digest+params
        // coalesce onto one computation. Followers block here — before
        // admission, so they never consume an analysis slot — and are
        // answered from the leader's cache fill.
        match shared.flights.join(&key, &shared.cache) {
            FlightOutcome::Served(cached) => {
                shared.metrics.cache_hit();
                shared.metrics.coalesced_hit();
                return Ok((*cached).clone().with_header("X-Btr-Cache", "coalesced"));
            }
            FlightOutcome::Leader(guard) => flight = Some(guard),
        }
    }
    // Held until this request lands (cache filled or error returned), so
    // followers wait instead of duplicating the analysis.
    let _flight = flight;

    // Admission control: never queue, never hang — reject over capacity.
    let active = shared.active.fetch_add(1, Ordering::SeqCst);
    let _slot = DecrementOnDrop(&shared.active);
    if active >= shared.config.max_concurrent {
        return Err(ServeError::Busy { active });
    }
    let _gauge = shared.metrics.analysis_guard();

    let declared = request.content_length()?;
    if declared > shared.config.max_upload_bytes {
        return Err(ServeError::PayloadTooLarge {
            declared,
            limit: shared.config.max_upload_bytes,
        });
    }
    let budgets = Budgets {
        chunk_records: shared.config.chunk_records,
        max_static_branches: shared.config.max_static_branches,
    };
    let mut upload = DigestReader::new(LimitedReader::new(body, declared));
    let outcome = match request.path.as_str() {
        "/classify" => analysis::run_classify(&mut upload, format, scheme, budgets),
        _ => {
            let family = analysis::parse_family(request.query_param("family"))?;
            let metric = analysis::parse_metric(request.query_param("metric"))?;
            let histories = analysis::parse_histories(request.query_param("histories"), family)?;
            if declared <= shared.config.batch_upload_bytes {
                // Batch admission: materialize the upload, then run it as
                // one lane of the shared SWAR batch — concurrent sweeps of
                // the same digest share a single first-level pass, and every
                // concurrent sweep amortizes the engine task. Bit-identical
                // to the streaming path below, so the cache sees one truth.
                analysis::materialize_sweep(&mut upload, format, budgets).map(|materialized| {
                    // Drain the declared tail now: the digest is the batch
                    // grouping key, so it must be final before submission.
                    let _ = io::copy(&mut upload, &mut io::sink());
                    let digest = upload.digest().hex();
                    shared.metrics.batched_lane();
                    let results = shared.batch.run(
                        digest,
                        Arc::clone(&materialized.interned),
                        family.fused_paper(&histories),
                    );
                    analysis::sweep_document(
                        &materialized,
                        family,
                        &histories,
                        results,
                        metric,
                        scheme,
                        &shared.pool,
                    )
                })
            } else {
                analysis::run_sweep(
                    &mut upload,
                    format,
                    scheme,
                    metric,
                    family,
                    &histories,
                    budgets,
                    &shared.pool,
                )
            }
        }
    };
    // Drain any declared-but-unconsumed tail so the digest covers the whole
    // body (bounded by the already-checked Content-Length).
    let _ = io::copy(&mut upload, &mut io::sink());
    shared.metrics.add_bytes_streamed(upload.bytes_read());
    let outcome = outcome?;
    shared.metrics.add_records_decoded(outcome.records);
    shared.metrics.cache_miss();

    let digest = upload.digest().hex();
    // The cached copy carries the digest but not the hit/store marker; each
    // reply stamps its own `X-Btr-Cache`.
    let base = encode(outcome.value, btrw, 200).with_header("X-Btr-Digest", digest.clone());
    shared
        .cache
        .insert(CacheKey { digest, params }, base.clone());
    Ok(base.with_header("X-Btr-Cache", "store"))
}

/// Decrements an atomic counter when dropped (error paths included).
struct DecrementOnDrop<'a>(&'a AtomicUsize);

impl Drop for DecrementOnDrop<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_internally_consistent() {
        let config = ServerConfig::default();
        assert!(config.max_concurrent >= 1);
        assert!(config.chunk_records >= 1);
        assert!(config.max_upload_bytes > 0);
        assert!(!config.request_timeout.is_zero());
    }

    #[test]
    fn bind_on_an_ephemeral_port_reports_the_real_address() {
        let server = Server::bind(ServerConfig::default()).expect("ephemeral bind succeeds");
        let addr = server.local_addr();
        assert_ne!(addr.port(), 0);
        assert_eq!(server.handle().addr(), addr);
    }
}
