//! Content-addressed response caching.
//!
//! A successful analysis is a pure function of `(body digest, endpoint
//! parameters)`, so its rendered response can be replayed verbatim for any
//! identical upload. Keys pair the [`crate::digest::Fnv64`] body digest with
//! the canonical parameter string; entries hold the complete rendered
//! [`Response`]. Clients that know an upload's digest (from a prior
//! `X-Btr-Digest` response header) can send it in a request header and be
//! answered *without* the server reading the body at all.
//!
//! The map is a `BTreeMap`, not a `HashMap`, so iteration order — and with
//! it eviction under the FIFO bound — is deterministic and the analyzer's
//! determinism pass needs no allowlist entry for this file.

use crate::http::Response;
use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// A cache key: body digest (16 hex digits) × canonical request parameters.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CacheKey {
    /// The upload's FNV-1a 64 digest in hex.
    pub digest: String,
    /// Endpoint path plus canonicalized parameters, e.g.
    /// `/sweep?family=gas&histories=0,2,4`.
    pub params: String,
}

#[derive(Debug, Default)]
struct CacheInner {
    map: BTreeMap<CacheKey, Arc<Response>>,
    order: VecDeque<CacheKey>,
}

/// A bounded FIFO cache of rendered responses, safe for concurrent use.
#[derive(Debug)]
pub struct ResponseCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
}

impl ResponseCache {
    /// A cache holding at most `capacity` responses. Zero disables caching
    /// (every lookup misses, every insert is dropped).
    pub fn new(capacity: usize) -> Self {
        ResponseCache {
            inner: Mutex::new(CacheInner::default()),
            capacity,
        }
    }

    /// The configured entry bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cached response for `key`, if any.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<Response>> {
        self.inner.lock().map.get(key).cloned()
    }

    /// Inserts a rendered response, evicting the oldest entry when full.
    /// Re-inserting an existing key refreshes the value without growing the
    /// eviction queue.
    pub fn insert(&self, key: CacheKey, response: Response) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        if inner.map.insert(key.clone(), Arc::new(response)).is_some() {
            return;
        }
        inner.order.push_back(key);
        while inner.map.len() > self.capacity {
            if let Some(oldest) = inner.order.pop_front() {
                inner.map.remove(&oldest);
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(digest: &str, params: &str) -> CacheKey {
        CacheKey {
            digest: digest.into(),
            params: params.into(),
        }
    }

    fn resp(tag: &str) -> Response {
        Response::json(200, format!("{{\"tag\":\"{tag}\"}}"))
    }

    #[test]
    fn hits_require_both_digest_and_params_to_match() {
        let cache = ResponseCache::new(8);
        cache.insert(key("aa", "/classify?scheme=paper11"), resp("one"));
        assert!(cache.get(&key("aa", "/classify?scheme=paper11")).is_some());
        assert!(cache.get(&key("ab", "/classify?scheme=paper11")).is_none());
        assert!(cache.get(&key("aa", "/classify?scheme=chang6")).is_none());
    }

    #[test]
    fn eviction_is_fifo_and_bounded() {
        let cache = ResponseCache::new(2);
        cache.insert(key("a", "p"), resp("a"));
        cache.insert(key("b", "p"), resp("b"));
        cache.insert(key("c", "p"), resp("c"));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key("a", "p")).is_none(), "oldest evicted");
        assert!(cache.get(&key("b", "p")).is_some());
        assert!(cache.get(&key("c", "p")).is_some());
        // Refreshing an existing key neither grows nor double-queues it.
        cache.insert(key("c", "p"), resp("c2"));
        assert_eq!(cache.len(), 2);
        cache.insert(key("d", "p"), resp("d"));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key("b", "p")).is_none(), "b was next out");
        assert_eq!(
            cache.get(&key("c", "p")).expect("refreshed").body,
            resp("c2").body
        );
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ResponseCache::new(0);
        cache.insert(key("a", "p"), resp("a"));
        assert!(cache.is_empty());
        assert!(cache.get(&key("a", "p")).is_none());
    }
}
