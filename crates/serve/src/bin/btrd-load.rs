//! `btrd-load` — the self-driving load and smoke client for `btrd`.
//!
//! ```text
//! btrd-load --addr HOST:PORT --smoke [--upload-limit BYTES]
//! btrd-load --addr HOST:PORT [--requests N] [--concurrency C]
//!           [--records N] [--timeout-ms N]
//! ```
//!
//! `--smoke` drives the full acceptance scenario suite against a running
//! daemon — success paths, cache replay, both wire codecs, every typed
//! failure class, and a concurrent burst — and exits nonzero on the first
//! divergence. Without `--smoke` it runs a throughput measurement against
//! `POST /classify` and prints a JSON summary through the same writer the
//! benches use.
//!
//! Wall-clock use in this binary is measurement, not logic: latency and
//! throughput are *about* elapsed time (see the `[no-wallclock]` allowlist).

use btr_serve::client::{send, ClientRequest, ClientResponse};
use btr_trace::io::binary;
use btr_trace::{BranchAddr, BranchKind, BranchRecord, Outcome, Trace, TraceMetadata};
use btr_wire::{MapBuilder, Value, Wire};
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

fn main() {
    let mut options = Options::default();
    if let Err(reason) = options.apply_args(std::env::args().skip(1)) {
        eprintln!("btrd-load: {reason}");
        eprintln!(
            "usage: btrd-load --addr HOST:PORT [--smoke] [--upload-limit BYTES] \
             [--requests N] [--concurrency C] [--records N] [--timeout-ms N]"
        );
        std::process::exit(2);
    }
    let outcome = if options.smoke {
        run_smoke(&options)
    } else {
        run_throughput(&options)
    };
    if let Err(reason) = outcome {
        eprintln!("btrd-load: FAIL: {reason}");
        std::process::exit(1);
    }
}

/// Parsed command line.
struct Options {
    addr: String,
    smoke: bool,
    upload_limit: u64,
    requests: usize,
    concurrency: usize,
    records: usize,
    timeout: Duration,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            addr: String::new(),
            smoke: false,
            upload_limit: 0,
            requests: 64,
            concurrency: 4,
            records: 20_000,
            timeout: Duration::from_secs(30),
        }
    }
}

impl Options {
    fn apply_args(&mut self, mut args: impl Iterator<Item = String>) -> Result<(), String> {
        while let Some(flag) = args.next() {
            let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
            match flag.as_str() {
                "--addr" => self.addr = value("--addr")?,
                "--smoke" => self.smoke = true,
                "--upload-limit" => self.upload_limit = parse(&flag, &value("--upload-limit")?)?,
                "--requests" => self.requests = parse(&flag, &value("--requests")?)?,
                "--concurrency" => self.concurrency = parse(&flag, &value("--concurrency")?)?,
                "--records" => self.records = parse(&flag, &value("--records")?)?,
                "--timeout-ms" => {
                    self.timeout = Duration::from_millis(parse(&flag, &value("--timeout-ms")?)?);
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        if self.addr.is_empty() {
            return Err("--addr HOST:PORT is required".into());
        }
        if self.requests == 0 || self.concurrency == 0 || self.records == 0 {
            return Err("--requests, --concurrency and --records must be nonzero".into());
        }
        Ok(())
    }
}

fn parse<T: std::str::FromStr>(flag: &str, raw: &str) -> Result<T, String> {
    raw.parse()
        .map_err(|_| format!("{flag} wants an unsigned integer, got {raw:?}"))
}

// ---------------------------------------------------------------------------
// Deterministic upload material
// ---------------------------------------------------------------------------

/// A deterministic synthetic trace: a few hundred static branches cycling
/// through distinct taken/transition behaviours so every classification
/// class is populated, encoded once and replayed byte-identically.
fn synthetic_trace(records: usize) -> Trace {
    let mut out = Vec::with_capacity(records);
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    for i in 0..records {
        // xorshift keeps the stream deterministic without wall-clock or RNG.
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let site = (i % 211) as u64;
        let addr = BranchAddr::new(0x40_0000 + site * 16);
        let record = match site % 5 {
            // Strongly-biased taken, mostly-not-taken, alternating,
            // transition-heavy and noisy sites, in rotation.
            0 => BranchRecord::conditional(addr, Outcome::from_bool(true)),
            1 => BranchRecord::conditional(addr, Outcome::from_bool(i % 17 == 0)),
            2 => BranchRecord::conditional(addr, Outcome::from_bool(i % 2 == 0)),
            3 => BranchRecord::conditional(addr, Outcome::from_bool((i / 3) % 2 == 0)),
            _ if site % 23 == 4 => {
                BranchRecord::new(addr, BranchKind::Call, Outcome::from_bool(true))
                    .with_target(BranchAddr::new(0x50_0000 + site))
            }
            _ => BranchRecord::conditional(addr, Outcome::from_bool(state.is_multiple_of(3))),
        };
        out.push(record);
    }
    let meta = TraceMetadata::named("btrd-load")
        .with_input_set("synthetic")
        .with_seed(0xB7D);
    Trace::from_records(meta, out)
}

/// The trace as BTRT bytes.
fn btrt_bytes(records: usize) -> Result<Vec<u8>, String> {
    let trace = synthetic_trace(records);
    let mut bytes = Vec::new();
    binary::write_trace(&mut bytes, &trace).map_err(|e| format!("encoding BTRT: {e}"))?;
    Ok(bytes)
}

// ---------------------------------------------------------------------------
// Smoke suite
// ---------------------------------------------------------------------------

/// One scenario: a name plus a check that explains its own failure.
fn check(name: &str, outcome: Result<(), String>) -> Result<(), String> {
    match outcome {
        Ok(()) => {
            println!("smoke: PASS {name}");
            Ok(())
        }
        Err(reason) => Err(format!("{name}: {reason}")),
    }
}

/// Asserts a status, quoting the body on divergence.
fn expect_status(resp: &ClientResponse, want: u16) -> Result<(), String> {
    if resp.status == want {
        Ok(())
    } else {
        Err(format!(
            "expected status {want}, got {} with body {}",
            resp.status,
            resp.text()
        ))
    }
}

/// Parses a JSON body into a `Value`.
fn json_body(resp: &ClientResponse) -> Result<Value, String> {
    Value::from_json(&resp.text()).map_err(|e| format!("body is not valid JSON: {e}"))
}

/// A JSON error body must carry the expected kebab-case error code.
fn expect_error_code(resp: &ClientResponse, code: &str) -> Result<(), String> {
    let value = json_body(resp)?;
    match value.get("error").and_then(Value::as_str) {
        Ok(got) if got == code => Ok(()),
        other => Err(format!("expected error code {code:?}, got {other:?}")),
    }
}

fn run_smoke(options: &Options) -> Result<(), String> {
    let addr = options.addr.as_str();
    let timeout = options.timeout;
    let body = btrt_bytes(options.records)?;
    let http = |req: &ClientRequest| -> Result<ClientResponse, String> {
        send(addr, req, timeout).map_err(|e| format!("request failed: {e}"))
    };

    check("healthz answers 200", {
        http(&ClientRequest::get("/healthz")).and_then(|resp| {
            expect_status(&resp, 200)?;
            let value = json_body(&resp)?;
            match value.get("ok").and_then(Value::as_bool) {
                Ok(true) => Ok(()),
                other => Err(format!("expected ok=true, got {other:?}")),
            }
        })
    })?;

    let mut digest = String::new();
    check("classify streams BTRT and answers JSON", {
        http(&ClientRequest::post("/classify", body.clone())).and_then(|resp| {
            expect_status(&resp, 200)?;
            if resp.header("x-btr-cache") != Some("store") {
                return Err(format!("first upload must store: {:?}", resp.headers));
            }
            digest = resp
                .header("x-btr-digest")
                .ok_or("missing X-Btr-Digest header")?
                .to_string();
            let value = json_body(&resp)?;
            for field in ["metadata", "joint", "analysis", "advisor"] {
                if value.get(field).is_err() {
                    return Err(format!("classify document missing {field:?}"));
                }
            }
            match value.get("records").and_then(Value::as_u64) {
                Ok(n) if n == options.records as u64 => Ok(()),
                other => Err(format!(
                    "expected records={}, got {other:?}",
                    options.records
                )),
            }
        })
    })?;

    check("replaying the digest hits the cache without an upload", {
        let req = ClientRequest::post("/classify", Vec::new())
            .with_header("X-Btr-Digest", digest.clone());
        http(&req).and_then(|resp| {
            expect_status(&resp, 200)?;
            if resp.header("x-btr-cache") != Some("hit") {
                return Err(format!("digest replay must hit: {:?}", resp.headers));
            }
            Ok(())
        })
    })?;

    check(
        "re-uploading identical bytes is content-addressed identically",
        {
            http(&ClientRequest::post("/classify", body.clone())).and_then(|resp| {
                expect_status(&resp, 200)?;
                if resp.header("x-btr-digest") != Some(digest.as_str()) {
                    return Err(format!(
                        "identical upload must share the digest {digest}: {:?}",
                        resp.headers
                    ));
                }
                Ok(())
            })
        },
    )?;

    check("sweep answers the history curve as JSON", {
        let req = ClientRequest::post("/sweep?family=pas&histories=0,2,4", body.clone());
        http(&req).and_then(|resp| {
            expect_status(&resp, 200)?;
            let value = json_body(&resp)?;
            match value.get("histories").and_then(Value::as_list) {
                Ok(h) if h.len() == 3 => {}
                other => return Err(format!("expected 3 histories, got {other:?}")),
            }
            if value.get("class_history").is_err() {
                return Err("sweep document missing class_history".into());
            }
            Ok(())
        })
    })?;

    check("sweep negotiates BTRW via Accept", {
        let req = ClientRequest::post("/sweep?family=gas&histories=0,1", body.clone())
            .with_header("Accept", "application/x-btrw");
        http(&req).and_then(|resp| {
            expect_status(&resp, 200)?;
            let value =
                Value::from_btrw(&resp.body).map_err(|e| format!("body is not valid BTRW: {e}"))?;
            match value.get("family").and_then(Value::as_str) {
                Ok("GAs") => Ok(()),
                other => Err(format!("expected family GAs, got {other:?}")),
            }
        })
    })?;

    check("text uploads classify too", {
        let text = "# btrd-load text upload\nC 400000 T\nC 400010 N\nC 400000 N\n".repeat(64);
        let req = ClientRequest::post("/classify", text.into_bytes())
            .with_header("Content-Type", "text/plain");
        http(&req).and_then(|resp| expect_status(&resp, 200))
    })?;

    if options.upload_limit > 0 {
        check("oversized declared uploads are refused with 413", {
            // The well-formed client always derives Content-Length from the
            // body, so drive the head by hand for this one.
            raw_request(
                addr,
                &format!(
                    "POST /classify HTTP/1.1\r\nHost: btrd\r\nContent-Length: {}\r\n\
                     Connection: close\r\n\r\n",
                    options.upload_limit + 1
                ),
                timeout,
            )
            .and_then(|resp| {
                expect_status(&resp, 413)?;
                expect_error_code(&resp, "payload-too-large")
            })
        })?;
    }

    check("truncated BTRT surfaces a typed 422, not a hang", {
        let mut cut = body.clone();
        cut.truncate(cut.len() - 3);
        http(&ClientRequest::post("/classify", cut)).and_then(|resp| {
            expect_status(&resp, 422)?;
            expect_error_code(&resp, "unprocessable-trace")
        })
    })?;

    check("garbage bytes surface a typed 422", {
        http(&ClientRequest::post(
            "/classify",
            b"not a trace at all".to_vec(),
        ))
        .and_then(|resp| {
            expect_status(&resp, 422)?;
            expect_error_code(&resp, "unprocessable-trace")
        })
    })?;

    check("bad query parameters are a 400", {
        let req = ClientRequest::post("/sweep?family=zas", body.clone());
        http(&req).and_then(|resp| {
            expect_status(&resp, 400)?;
            expect_error_code(&resp, "bad-request")
        })
    })?;

    check("a malformed request head is a 400", {
        raw_request(addr, "TOTAL JUNK\r\n\r\n", timeout).and_then(|resp| expect_status(&resp, 400))
    })?;

    check("unknown paths are 404, wrong methods 405", {
        http(&ClientRequest::get("/no-such-endpoint")).and_then(|resp| {
            expect_status(&resp, 404)?;
            http(&ClientRequest::get("/classify")).and_then(|resp| expect_status(&resp, 405))
        })
    })?;

    check(
        "a concurrent burst answers every request (200 or clean 503)",
        {
            let burst = options.concurrency.max(4);
            let failures: Vec<String> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..burst)
                    .map(|i| {
                        let body = &body;
                        scope.spawn(move || -> Result<(), String> {
                            // Distinct histories defeat the cache so the burst
                            // actually exercises concurrent analyses.
                            let target = format!("/sweep?family=pas&histories=0,{}", 1 + i % 8);
                            let resp =
                                send(addr, &ClientRequest::post(&target, body.clone()), timeout)
                                    .map_err(|e| format!("burst request failed: {e}"))?;
                            match resp.status {
                                200 => Ok(()),
                                503 => expect_error_code(&resp, "busy"),
                                other => Err(format!("burst got unexpected status {other}")),
                            }
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .filter_map(|h| match h.join() {
                        Ok(Ok(())) => None,
                        Ok(Err(reason)) => Some(reason),
                        Err(_) => Some("burst worker panicked".into()),
                    })
                    .collect()
            });
            if failures.is_empty() {
                Ok(())
            } else {
                Err(failures.join("; "))
            }
        },
    )?;

    check("metrics decode as a wire document and saw this suite", {
        http(&ClientRequest::get("/metrics")).and_then(|resp| {
            expect_status(&resp, 200)?;
            let snapshot = btr_serve::metrics::MetricsSnapshot::from_json(&resp.text())
                .map_err(|e| format!("metrics did not decode: {e}"))?;
            if snapshot.requests == 0 {
                return Err("metrics report zero requests after a full suite".into());
            }
            if snapshot.cache_hits == 0 {
                return Err("the digest replay must register a cache hit".into());
            }
            if snapshot.responses_4xx == 0 {
                return Err("the failure scenarios must show up as 4xx".into());
            }
            Ok(())
        })
    })?;

    println!("smoke: all scenarios passed");
    Ok(())
}

/// Writes a raw request head (no body) and reads whatever comes back — for
/// scenarios the well-formed client cannot produce.
fn raw_request(addr: &str, head: &str, timeout: Duration) -> Result<ClientResponse, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    if !timeout.is_zero() {
        stream
            .set_read_timeout(Some(timeout))
            .and_then(|()| stream.set_write_timeout(Some(timeout)))
            .map_err(|e| format!("socket timeout: {e}"))?;
    }
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("clone stream: {e}"))?;
    let write_result = writer
        .write_all(head.as_bytes())
        .and_then(|()| writer.flush());
    let mut reader = std::io::BufReader::new(stream);
    let parsed = read_raw_response(&mut reader);
    match (parsed, write_result) {
        (Ok(resp), _) => Ok(resp),
        (Err(e), _) => Err(format!("read response: {e}")),
    }
}

/// Status-line-and-body parse for `raw_request` (reuses the client's rules).
fn read_raw_response<R: std::io::BufRead>(r: &mut R) -> std::io::Result<ClientResponse> {
    let mut all = Vec::new();
    r.read_to_end(&mut all)?;
    btr_serve::client::parse_response(&all)
}

// ---------------------------------------------------------------------------
// Throughput mode
// ---------------------------------------------------------------------------

fn run_throughput(options: &Options) -> Result<(), String> {
    let body = btrt_bytes(options.records)?;
    let upload_bytes = body.len() as u64;
    let issued = AtomicUsize::new(0);
    let started = Instant::now();
    let per_thread: Vec<Result<ThreadStats, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..options.concurrency)
            .map(|_| {
                let issued = &issued;
                let body = &body;
                let options = &options;
                scope.spawn(move || -> Result<ThreadStats, String> {
                    let mut stats = ThreadStats::default();
                    loop {
                        if issued.fetch_add(1, Ordering::Relaxed) >= options.requests {
                            return Ok(stats);
                        }
                        let begun = Instant::now();
                        let resp = send(
                            &options.addr,
                            &ClientRequest::post("/classify", body.clone()),
                            options.timeout,
                        )
                        .map_err(|e| format!("request failed: {e}"))?;
                        stats.latencies_us.push(begun.elapsed().as_micros() as u64);
                        match resp.status {
                            200 => stats.ok += 1,
                            503 => stats.busy += 1,
                            other => return Err(format!("unexpected status {other}")),
                        }
                        if resp.header("x-btr-cache") == Some("hit") {
                            stats.cache_hits += 1;
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(result) => result,
                Err(_) => Err("throughput worker panicked".into()),
            })
            .collect()
    });
    let elapsed = started.elapsed();
    let mut merged = ThreadStats::default();
    for stats in per_thread {
        let stats = stats?;
        merged.ok += stats.ok;
        merged.busy += stats.busy;
        merged.cache_hits += stats.cache_hits;
        merged.latencies_us.extend(stats.latencies_us);
    }
    merged.latencies_us.sort_unstable();
    let completed = merged.latencies_us.len() as u64;
    let elapsed_us = elapsed.as_micros().max(1) as u64;
    let summary = MapBuilder::new()
        .field("requests", completed)
        .field("concurrency", options.concurrency as u64)
        .field("records_per_upload", options.records as u64)
        .field("upload_bytes", upload_bytes)
        .field("ok", merged.ok)
        .field("busy_503", merged.busy)
        .field("cache_hits", merged.cache_hits)
        .field("elapsed_ms", elapsed_us / 1000)
        .field(
            "requests_per_sec",
            completed.saturating_mul(1_000_000) / elapsed_us,
        )
        .field(
            "records_per_sec",
            completed
                .saturating_mul(options.records as u64)
                .saturating_mul(1_000_000)
                / elapsed_us,
        )
        .field("p50_latency_us", percentile(&merged.latencies_us, 50))
        .field("p99_latency_us", percentile(&merged.latencies_us, 99))
        .build();
    println!(
        "{}",
        summary
            .to_json_pretty()
            .map_err(|e| format!("summary render: {e}"))?
    );
    Ok(())
}

#[derive(Default)]
struct ThreadStats {
    ok: u64,
    busy: u64,
    cache_hits: u64,
    latencies_us: Vec<u64>,
}

/// The `p`-th percentile of sorted microsecond samples (0 when empty).
fn percentile(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() - 1) * p / 100;
    sorted[rank]
}
