//! `btrd` — the trace-classification daemon.
//!
//! ```text
//! btrd [--addr HOST:PORT] [--threads N] [--max-concurrent N]
//!      [--max-upload-bytes N] [--chunk-records N] [--max-static-branches N]
//!      [--timeout-ms N] [--cache-entries N]
//! ```
//!
//! Prints `btrd listening on HOST:PORT` on stdout once the listener is
//! bound (the smoke harness scrapes that line for the ephemeral port), then
//! serves until killed.

use btr_serve::{Server, ServerConfig};
use std::time::Duration;

fn main() {
    let mut config = ServerConfig::default();
    if let Err(reason) = apply_args(&mut config, std::env::args().skip(1)) {
        eprintln!("btrd: {reason}");
        eprintln!("usage: btrd [--addr HOST:PORT] [--threads N] [--max-concurrent N] [--max-upload-bytes N] [--chunk-records N] [--max-static-branches N] [--timeout-ms N] [--cache-entries N]");
        std::process::exit(2);
    }
    let server = match Server::bind(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("btrd: bind failed: {e}");
            std::process::exit(1);
        }
    };
    println!("btrd listening on {}", server.local_addr());
    if let Err(e) = server.run() {
        eprintln!("btrd: listener failed: {e}");
        std::process::exit(1);
    }
}

/// Folds command-line flags into the config; returns a reason on bad usage.
fn apply_args(
    config: &mut ServerConfig,
    mut args: impl Iterator<Item = String>,
) -> Result<(), String> {
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--threads" => config.analysis_threads = parse(&flag, &value("--threads")?)?,
            "--max-concurrent" => {
                config.max_concurrent = parse(&flag, &value("--max-concurrent")?)?;
            }
            "--max-upload-bytes" => {
                config.max_upload_bytes = parse(&flag, &value("--max-upload-bytes")?)?;
            }
            "--chunk-records" => config.chunk_records = parse(&flag, &value("--chunk-records")?)?,
            "--max-static-branches" => {
                config.max_static_branches = parse(&flag, &value("--max-static-branches")?)?;
            }
            "--timeout-ms" => {
                config.request_timeout =
                    Duration::from_millis(parse(&flag, &value("--timeout-ms")?)?);
            }
            "--cache-entries" => config.cache_entries = parse(&flag, &value("--cache-entries")?)?,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if config.analysis_threads == 0 || config.max_concurrent == 0 || config.chunk_records == 0 {
        return Err("thread, concurrency and chunk bounds must be nonzero".into());
    }
    Ok(())
}

/// Parses one unsigned flag value.
fn parse<T: std::str::FromStr>(flag: &str, raw: &str) -> Result<T, String> {
    raw.parse()
        .map_err(|_| format!("{flag} wants an unsigned integer, got {raw:?}"))
}
