//! Content digests for the response cache.
//!
//! Uploads are addressed by an FNV-1a 64-bit digest of the raw body bytes,
//! computed *while* the body streams through the trace decoder — the server
//! never buffers an upload to hash it. The digest is deterministic across
//! processes and platforms (pure byte arithmetic, no keying), which is what
//! lets a client learn a digest from one response's `X-Btr-Digest` header
//! and replay it against another server instance.

use std::io::Read;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a 64-bit hasher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64 {
    state: u64,
}

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }

    /// Folds `bytes` into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// The digest of everything folded in so far.
    pub fn finish(&self) -> u64 {
        self.state
    }

    /// The digest as the 16-hex-digit form used in `X-Btr-Digest`.
    pub fn hex(&self) -> String {
        format!("{:016x}", self.state)
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// Hashes and counts every byte that passes through it, so digesting rides
/// the existing streaming read instead of a second pass.
#[derive(Debug)]
pub struct DigestReader<R> {
    inner: R,
    hasher: Fnv64,
    bytes: u64,
}

impl<R: Read> DigestReader<R> {
    /// Wraps `inner`.
    pub fn new(inner: R) -> Self {
        DigestReader {
            inner,
            hasher: Fnv64::new(),
            bytes: 0,
        }
    }

    /// The digest of the bytes read so far.
    pub fn digest(&self) -> Fnv64 {
        self.hasher
    }

    /// How many bytes have been read through this wrapper.
    pub fn bytes_read(&self) -> u64 {
        self.bytes
    }
}

impl<R: Read> Read for DigestReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.hasher.update(&buf[..n]);
        self.bytes += n as u64;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_matches_the_published_fnv1a_vectors() {
        // Reference values from the FNV specification.
        let mut h = Fnv64::new();
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        h.update(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv64::new();
        h.update(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
        assert_eq!(h.hex(), "85944171f73967e8");
    }

    #[test]
    fn split_updates_equal_one_shot_updates() {
        let mut whole = Fnv64::new();
        whole.update(b"branch transition rate");
        let mut split = Fnv64::new();
        split.update(b"branch ");
        split.update(b"transition");
        split.update(b" rate");
        assert_eq!(whole.finish(), split.finish());
    }

    #[test]
    fn digest_reader_hashes_exactly_what_passes_through() {
        let data = b"0123456789".repeat(100);
        let mut expected = Fnv64::new();
        expected.update(&data);
        let mut r = DigestReader::new(data.as_slice());
        let mut sink = Vec::new();
        std::io::Read::read_to_end(&mut r, &mut sink).expect("in-memory read succeeds");
        assert_eq!(r.bytes_read(), data.len() as u64);
        assert_eq!(r.digest().finish(), expected.finish());
    }
}
