//! # btr-serve
//!
//! `btrd`, the trace-classification daemon: the serving layer that turns the
//! BTR analysis stack into a network service, plus the `btrd-load` driver
//! that exercises it.
//!
//! The daemon speaks a dependency-free slice of HTTP/1.1 over
//! `std::net::TcpListener`. Uploaded traces (`BTRT` binary or text) stream
//! through [`btr_trace::ChunkedTraceReader`] — an upload is never buffered
//! whole — into the classification profile, the fused multi-history sweep
//! engine and the §5.4 hybrid advisor, and responses render as JSON or
//! `BTRW` through the [`btr_wire::Wire`] data model, negotiated per request
//! by `Accept`.
//!
//! Production posture:
//!
//! * **Content-addressed caching** ([`cache`]) — responses are keyed by
//!   (body digest × canonical parameters) and replayed for identical
//!   uploads; clients that present `X-Btr-Digest` skip the upload entirely.
//! * **Memory budgets** ([`analysis`]) — per-connection peak memory is one
//!   decode chunk plus capped interning tables, enforced while streaming.
//! * **Admission control** ([`server`]) — over-capacity requests get an
//!   immediate 503, stalled peers are torn down by socket timeouts.
//! * **Telemetry** ([`metrics`]) — `/metrics` serves the counters through
//!   the same JSON writer as every other artifact.
//!
//! Endpoints: `GET /healthz`, `GET /metrics`, `POST /classify`,
//! `POST /sweep`. See the repository README's *Serving* section for wire
//! examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod batch;
pub mod cache;
pub mod client;
pub mod digest;
pub mod error;
pub mod flight;
pub mod http;
pub mod metrics;
pub mod server;

pub use error::ServeError;
pub use server::{Server, ServerConfig, ServerHandle};
