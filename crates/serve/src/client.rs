//! A minimal blocking HTTP/1.1 client, sized to `btrd`'s dialect.
//!
//! One request per connection, `Connection: close`, bodies read to EOF under
//! `Content-Length` when present. Shared by the `btrd-load` driver, the
//! benches and the e2e tests so every consumer speaks to the daemon through
//! the same code path.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A response as the client saw it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// The first value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A request to send: method, target, optional headers and body.
#[derive(Debug, Clone, Default)]
pub struct ClientRequest {
    /// Request method (`GET`, `POST`, …).
    pub method: String,
    /// Request target, path plus optional query (`/sweep?family=gas`).
    pub target: String,
    /// Extra headers beyond `Host`, `Content-Length` and `Connection`.
    pub headers: Vec<(String, String)>,
    /// Body bytes (empty for body-less methods).
    pub body: Vec<u8>,
}

impl ClientRequest {
    /// A body-less GET.
    pub fn get(target: &str) -> Self {
        ClientRequest {
            method: "GET".into(),
            target: target.into(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// A POST carrying `body`.
    pub fn post(target: &str, body: Vec<u8>) -> Self {
        ClientRequest {
            method: "POST".into(),
            target: target.into(),
            headers: Vec::new(),
            body,
        }
    }

    /// Appends a header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }
}

/// Sends one request and reads the full response. `timeout` bounds connect,
/// read and write individually; `Duration::ZERO` disables it.
///
/// # Errors
///
/// Fails on connection or protocol errors; non-2xx statuses are *not*
/// errors (the caller inspects `status`).
pub fn send(addr: &str, request: &ClientRequest, timeout: Duration) -> io::Result<ClientResponse> {
    let stream = if timeout.is_zero() {
        TcpStream::connect(addr)?
    } else {
        let parsed: std::net::SocketAddr = addr
            .parse()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, format!("{addr}: {e}")))?;
        TcpStream::connect_timeout(&parsed, timeout)?
    };
    if !timeout.is_zero() {
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
    }
    let mut writer = stream.try_clone()?;
    // The server may legally answer before the body is fully written (e.g.
    // an immediate 503 or 413): a failed send must not mask that response.
    let head = format!(
        "{} {} HTTP/1.1\r\nHost: btrd\r\nContent-Length: {}\r\n{}Connection: close\r\n\r\n",
        request.method,
        request.target,
        request.body.len(),
        request
            .headers
            .iter()
            .map(|(n, v)| format!("{n}: {v}\r\n"))
            .collect::<String>(),
    );
    let send_result = writer
        .write_all(head.as_bytes())
        .and_then(|()| writer.write_all(&request.body))
        .and_then(|()| writer.flush());
    let response = read_response(&mut BufReader::new(stream));
    match (response, send_result) {
        (Ok(resp), _) => Ok(resp),
        (Err(read_err), Err(_write_err)) => Err(read_err),
        (Err(read_err), Ok(())) => Err(read_err),
    }
}

/// Parses a fully-buffered response — for callers that drove the socket by
/// hand (e.g. malformed-request probes) but still want the client's rules.
///
/// # Errors
///
/// Fails when the bytes are not a parseable HTTP/1.1 response.
pub fn parse_response(bytes: &[u8]) -> io::Result<ClientResponse> {
    read_response(&mut BufReader::new(bytes))
}

/// Parses a response: status line, headers, body per `Content-Length`.
fn read_response<R: BufRead>(r: &mut R) -> io::Result<ClientResponse> {
    let mut status_line = String::new();
    r.read_line(&mut status_line)?;
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed status line {status_line:?}"),
            )
        })?;
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        r.read_line(&mut line)?;
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let declared = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse::<u64>().ok());
    let mut body = Vec::new();
    match declared {
        Some(n) => {
            body.resize(usize::try_from(n).unwrap_or(usize::MAX), 0);
            r.read_exact(&mut body)?;
        }
        None => {
            r.read_to_end(&mut body)?;
        }
    }
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn responses_parse_status_headers_and_exact_length_bodies() {
        let raw = b"HTTP/1.1 422 Unprocessable Content\r\n\
                    Content-Type: application/json\r\n\
                    X-Btr-Digest: 00ff\r\n\
                    Content-Length: 9\r\n\r\n{\"e\":\"x\"}"
            .to_vec();
        let resp =
            read_response(&mut BufReader::new(raw.as_slice())).expect("well-formed response");
        assert_eq!(resp.status, 422);
        assert_eq!(resp.header("x-btr-digest"), Some("00ff"));
        assert_eq!(resp.text(), "{\"e\":\"x\"}");
    }

    #[test]
    fn garbage_status_lines_are_io_errors_not_panics() {
        let raw = b"NOT HTTP AT ALL\r\n\r\n".to_vec();
        assert!(read_response(&mut BufReader::new(raw.as_slice())).is_err());
        let raw = b"\r\n".to_vec();
        assert!(read_response(&mut BufReader::new(raw.as_slice())).is_err());
    }
}
