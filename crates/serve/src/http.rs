//! A dependency-free slice of HTTP/1.1 — exactly what `btrd` needs.
//!
//! One request per connection (`Connection: close` on every response), a
//! bounded request head, streaming bodies gated by `Content-Length`, and
//! nothing else: no chunked transfer coding, no keep-alive, no pipelining.
//! The parser reads through any `BufRead` so the body bytes that follow the
//! head stay in the same buffered stream and can be handed to the trace
//! decoder without copying or rewinding.

use crate::error::ServeError;
use std::io::{BufRead, Read, Write};

/// Cap on the request head (request line + headers, CRLFs included): enough
/// for any legitimate client, small enough that a hostile one cannot balloon
/// per-connection memory before admission control even runs.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed request head. The body, if any, stays in the stream the head was
/// parsed from and is streamed by the handler under its declared length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The request method, uppercased as received (`GET`, `POST`, …).
    pub method: String,
    /// The path component of the request target, without the query string.
    pub path: String,
    /// The raw query string (no leading `?`); empty when absent.
    pub query: String,
    /// Header `(name, value)` pairs; names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
}

impl Request {
    /// Parses one request head from `r`, leaving the stream positioned at
    /// the first body byte.
    ///
    /// # Errors
    ///
    /// Fails with [`ServeError::HeaderTooLarge`] when the head exceeds
    /// [`MAX_HEAD_BYTES`], [`ServeError::BadRequest`] on malformed syntax,
    /// and [`ServeError::Timeout`] / [`ServeError::Io`] on transport
    /// failures.
    pub fn parse<R: BufRead>(r: &mut R) -> Result<Request, ServeError> {
        let mut budget = MAX_HEAD_BYTES;
        let request_line = read_crlf_line(r, &mut budget)?;
        if request_line.is_empty() {
            return Err(ServeError::BadRequest("empty request line".into()));
        }
        let mut parts = request_line.split(' ');
        let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
            (Some(m), Some(t), Some(v)) if parts.next().is_none() && !m.is_empty() => (m, t, v),
            _ => {
                return Err(ServeError::BadRequest(format!(
                    "malformed request line {request_line:?}"
                )))
            }
        };
        if !method.bytes().all(|b| b.is_ascii_uppercase()) {
            return Err(ServeError::BadRequest(format!(
                "malformed method {method:?}"
            )));
        }
        if version != "HTTP/1.1" && version != "HTTP/1.0" {
            return Err(ServeError::BadRequest(format!(
                "unsupported protocol version {version:?}"
            )));
        }
        if !target.starts_with('/') {
            return Err(ServeError::BadRequest(format!(
                "request target {target:?} is not an absolute path"
            )));
        }
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p.to_string(), q.to_string()),
            None => (target.to_string(), String::new()),
        };
        let mut headers = Vec::new();
        loop {
            let line = read_crlf_line(r, &mut budget)?;
            if line.is_empty() {
                break;
            }
            let (name, value) = line.split_once(':').ok_or_else(|| {
                ServeError::BadRequest(format!("header line {line:?} has no colon"))
            })?;
            if name.is_empty() || name.contains(' ') {
                return Err(ServeError::BadRequest(format!(
                    "malformed header name {name:?}"
                )));
            }
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }
        Ok(Request {
            method: method.to_string(),
            path,
            query,
            headers,
        })
    }

    /// The first value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The declared body length.
    ///
    /// # Errors
    ///
    /// [`ServeError::LengthRequired`] when absent, [`ServeError::BadRequest`]
    /// when unparseable.
    pub fn content_length(&self) -> Result<u64, ServeError> {
        let raw = self
            .header("content-length")
            .ok_or(ServeError::LengthRequired)?;
        raw.parse::<u64>()
            .map_err(|_| ServeError::BadRequest(format!("unparseable Content-Length {raw:?}")))
    }

    /// The value of one `key=value` pair in the query string, if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .split('&')
            .filter_map(|pair| pair.split_once('='))
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
    }
}

/// Reads one CRLF- (or bare-LF-) terminated line, charging the shared head
/// budget. The terminator is consumed and stripped.
fn read_crlf_line<R: BufRead>(r: &mut R, budget: &mut usize) -> Result<String, ServeError> {
    let mut line = Vec::new();
    // `read_until` already retries `ErrorKind::Interrupted` internally.
    let n = r
        .take(*budget as u64 + 1)
        .read_until(b'\n', &mut line)
        .map_err(ServeError::from_io)?;
    if n > *budget {
        return Err(ServeError::HeaderTooLarge {
            limit: MAX_HEAD_BYTES,
        });
    }
    *budget -= n;
    if line.last() != Some(&b'\n') {
        return Err(ServeError::BadRequest(
            "request head ended before the blank line".into(),
        ));
    }
    line.pop();
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line)
        .map_err(|_| ServeError::BadRequest("request head is not valid UTF-8".into()))
}

/// A response ready to serialize: status, extra headers, typed body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` of the body.
    pub content_type: String,
    /// Additional `(name, value)` headers (e.g. `X-Btr-Digest`).
    pub headers: Vec<(String, String)>,
    /// The full response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json".into(),
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A `BTRW` binary response with the given status.
    pub fn btrw(status: u16, body: Vec<u8>) -> Response {
        Response {
            status,
            content_type: "application/x-btrw".into(),
            headers: Vec::new(),
            body,
        }
    }

    /// Appends a header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Serializes the response, always closing the connection afterwards.
    ///
    /// # Errors
    ///
    /// Fails only if the underlying writer fails.
    pub fn write_to<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nConnection: close\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
            self.status,
            status_text(self.status),
            self.content_type,
            self.body.len()
        )?;
        for (name, value) in &self.headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        w.write_all(b"\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// The canonical reason phrase for the statuses `btrd` emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Content",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Exposes exactly `limit` bytes of `inner`, then reports EOF: the streaming
/// decoders behind an upload can never read past the declared body, and the
/// per-connection memory budget follows from the chunk bound alone.
#[derive(Debug)]
pub struct LimitedReader<R> {
    inner: R,
    remaining: u64,
}

impl<R: Read> LimitedReader<R> {
    /// Caps `inner` at `limit` bytes.
    pub fn new(inner: R, limit: u64) -> Self {
        LimitedReader {
            inner,
            remaining: limit,
        }
    }

    /// Bytes of the declared body not yet consumed.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }
}

impl<R: Read> Read for LimitedReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.remaining == 0 {
            return Ok(0);
        }
        let want = buf
            .len()
            .min(self.remaining.min(usize::MAX as u64) as usize);
        let n = self.inner.read(&mut buf[..want])?;
        self.remaining -= n as u64;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(text: &str) -> Result<Request, ServeError> {
        Request::parse(&mut BufReader::new(text.as_bytes()))
    }

    #[test]
    fn parses_a_post_with_query_headers_and_leaves_the_body_in_the_stream() {
        let raw = "POST /classify?scheme=paper11&metric=taken HTTP/1.1\r\n\
                   Host: localhost\r\n\
                   Content-Length: 4\r\n\
                   X-Btr-Digest: abcd\r\n\
                   \r\nBODY";
        let mut stream = BufReader::new(raw.as_bytes());
        let req = Request::parse(&mut stream).expect("well-formed head parses");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/classify");
        assert_eq!(req.query_param("scheme"), Some("paper11"));
        assert_eq!(req.query_param("metric"), Some("taken"));
        assert_eq!(req.query_param("absent"), None);
        assert_eq!(req.header("x-btr-digest"), Some("abcd"));
        assert_eq!(req.content_length().expect("length declared"), 4);
        let mut body = String::new();
        stream
            .read_to_string(&mut body)
            .expect("body bytes remain in the stream");
        assert_eq!(body, "BODY");
    }

    #[test]
    fn malformed_heads_are_typed_400s() {
        for raw in [
            "\r\n",
            "GARBAGE\r\n\r\n",
            "GET /x HTTP/2.9\r\n\r\n",
            "GET noslash HTTP/1.1\r\n\r\n",
            "get /x HTTP/1.1\r\n\r\n",
            "GET /x HTTP/1.1 extra\r\n\r\n",
            "GET /x HTTP/1.1\r\nNoColonHere\r\n\r\n",
            "GET /x HTTP/1.1\r\nBad Name: v\r\n\r\n",
            "GET /x HTTP/1.1\r\nTruncated",
        ] {
            let err = parse(raw).expect_err("malformed head must not parse");
            assert_eq!(err.status(), 400, "{raw:?} -> {err}");
        }
    }

    #[test]
    fn oversized_heads_are_431_not_unbounded_buffering() {
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        while raw.len() <= MAX_HEAD_BYTES {
            raw.push_str("X-Pad: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
        }
        raw.push_str("\r\n");
        let err = parse(&raw).expect_err("oversized head must not parse");
        assert_eq!(err.status(), 431);
    }

    #[test]
    fn missing_and_malformed_content_length_are_distinguished() {
        let req = parse("POST /classify HTTP/1.1\r\n\r\n").expect("head parses");
        assert_eq!(req.content_length().expect_err("no length").status(), 411);
        let req =
            parse("POST /classify HTTP/1.1\r\nContent-Length: ten\r\n\r\n").expect("head parses");
        assert_eq!(req.content_length().expect_err("bad length").status(), 400);
    }

    #[test]
    fn responses_serialize_with_close_and_exact_length() {
        let resp = Response::json(200, "{\"ok\":true}".into()).with_header("X-Btr-Digest", "ff");
        let mut out = Vec::new();
        resp.write_to(&mut out)
            .expect("writing to a Vec cannot fail");
        let text = String::from_utf8(out).expect("response head is ASCII");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("X-Btr-Digest: ff\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }

    #[test]
    fn limited_reader_stops_at_the_declared_length() {
        let mut r = LimitedReader::new("0123456789".as_bytes(), 4);
        let mut all = Vec::new();
        r.read_to_end(&mut all).expect("bounded read succeeds");
        assert_eq!(all, b"0123");
        assert_eq!(r.remaining(), 0);
    }
}
