//! Golden-token tests for the analyzer's Rust lexer on the constructs that
//! defeat grep-based linting: nested block comments, raw strings with hash
//! guards, string literals *containing* lint triggers, and the char-literal
//! versus lifetime ambiguity. Each case pins the exact token sequence (kind,
//! text, line) so a lexer regression shows up as a golden diff, not as a
//! mysteriously appearing or vanishing finding.

use btr_analyzer::lexer::{Lit, Token, TokenKind, TokenStream};

/// Renders a token as `kind:text@line` for compact golden comparison.
/// String-ish literal text is elided (their *content* must be invisible to
/// lints, so the goldens only pin that one literal token exists); numbers
/// keep their spelling and lifetimes drop the leading quote.
fn fmt(tok: &Token) -> String {
    let (kind, text) = match &tok.kind {
        TokenKind::Ident => ("ident", tok.text.clone()),
        TokenKind::Lifetime => ("life", tok.text.trim_start_matches('\'').to_string()),
        TokenKind::Literal(Lit::Str) => ("str", String::new()),
        TokenKind::Literal(Lit::RawStr) => ("raw", String::new()),
        TokenKind::Literal(Lit::Char) => ("char", String::new()),
        TokenKind::Literal(Lit::Byte) => ("byte", String::new()),
        TokenKind::Literal(Lit::ByteStr) => ("bstr", String::new()),
        TokenKind::Literal(Lit::Num) => ("num", tok.text.clone()),
        TokenKind::Punct(c) => return format!("p{c}:{c}@{}", tok.line),
    };
    format!("{kind}:{text}@{}", tok.line)
}

fn golden(source: &str) -> Vec<String> {
    TokenStream::lex(source).tokens.iter().map(fmt).collect()
}

#[test]
fn nested_block_comments_hide_code_and_count_lines() {
    let src = "a /* one /* two\n*/ still comment\n*/ b";
    assert_eq!(golden(src), vec!["ident:a@1", "ident:b@3"]);
}

#[test]
fn raw_strings_with_hash_guards_swallow_quotes_and_unwraps() {
    // The raw string contains `"#` sequences, an embedded `unwrap()` and a
    // fake comment — none of it may tokenize. The guard count (##) decides
    // where the literal really ends.
    let src = "let s = r##\"contains \"# quote, unwrap() and // comment\"##; next()";
    assert_eq!(
        golden(src),
        vec![
            "ident:let@1",
            "ident:s@1",
            "p=:=@1",
            "raw:@1",
            "p;:;@1",
            "ident:next@1",
            "p(:(@1",
            "p):)@1",
        ]
    );
}

#[test]
fn string_literals_containing_lint_triggers_are_opaque() {
    // `unwrap()`, `unsafe`, `HashMap` inside string/byte-string literals
    // must never produce identifier tokens.
    let src = r#"emit("call unwrap() in unsafe HashMap"); done"#;
    assert_eq!(
        golden(src),
        vec![
            "ident:emit@1",
            "p(:(@1",
            "str:@1",
            "p):)@1",
            "p;:;@1",
            "ident:done@1",
        ]
    );
}

#[test]
fn char_literals_escapes_and_lifetimes_disambiguate() {
    let src = "let c: char = 'x'; let nl = '\\n'; fn f<'a>(v: &'a str) {} let u = '_';";
    let toks = golden(src);
    // The two char literals and the escape lex as chars …
    assert_eq!(toks.iter().filter(|t| t.starts_with("char:")).count(), 3);
    // … and both `'a` occurrences lex as lifetimes, never as chars.
    assert_eq!(
        toks.iter().filter(|t| t.starts_with("life:")).count(),
        2,
        "expected exactly the two 'a lifetimes in {toks:?}"
    );
    assert!(toks.contains(&"life:a@1".to_string()));
}

#[test]
fn byte_literals_and_numbers_do_not_swallow_neighbours() {
    let src = "let b = b'q'; let r = 0x1f..2.5e3; v[0].f()";
    let toks = golden(src);
    assert!(toks.contains(&"byte:@1".to_string()));
    assert!(toks.contains(&"num:0x1f@1".to_string()));
    // The range dots survive as punctuation between the two numbers.
    assert_eq!(toks.iter().filter(|t| t.starts_with("p.")).count(), 3);
    assert!(toks.contains(&"num:2.5e3@1".to_string()));
}

#[test]
fn line_numbers_survive_multiline_literals() {
    // A raw string spanning three lines must not desynchronize line
    // accounting for the tokens after it — findings point at real lines.
    let src = "start\nlet s = r#\"line\ntwo\nthree\"#;\nafter";
    let toks = golden(src);
    assert!(toks.contains(&"ident:start@1".to_string()));
    assert!(toks.contains(&"raw:@2".to_string()));
    assert!(toks.contains(&"ident:after@5".to_string()));
}

#[test]
fn cfg_test_mask_tracks_module_extent() {
    let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn more() {}";
    let stream = TokenStream::lex(src);
    let masked: Vec<(&str, bool)> = stream
        .tokens
        .iter()
        .zip(&stream.in_test)
        .filter(|(t, _)| t.kind == TokenKind::Ident)
        .map(|(t, &m)| (t.text.as_str(), m))
        .collect();
    assert!(masked.contains(&("lib", false)));
    assert!(masked.contains(&("unwrap", true)));
    assert!(masked.contains(&("more", false)));
}
