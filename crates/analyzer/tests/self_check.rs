//! The analyzer eating its own dog food: `run_check` against this actual
//! workspace must come back clean, and the findings report must round-trip
//! through both wire codecs.
//!
//! Running the full check inside `cargo test` gives the ratchet teeth even
//! without CI: introducing a fresh `unwrap()` in library code, a new
//! `HashMap`, an `unsafe` block or an ungated `[[bench]]` target fails the
//! tier-1 test suite right here, with the offending file and line in the
//! assertion message.

use btr_analyzer::findings::{Finding, Report};
use btr_wire::Wire;
use std::path::Path;

/// The workspace root, two levels above this crate's manifest.
fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/analyzer sits two levels below the workspace root")
}

#[test]
fn the_workspace_passes_its_own_analyzer() {
    let report = btr_analyzer::run_check(workspace_root()).expect("self-check runs");
    let new: Vec<String> = report
        .findings
        .iter()
        .filter(|f| !f.ratcheted)
        .map(|f| {
            format!(
                "{}:{} [{}/{}] {}",
                f.file, f.line, f.pass, f.category, f.message
            )
        })
        .collect();
    assert!(
        new.is_empty(),
        "unratcheted analyzer findings — fix them or justify them in \
         analyzer-ratchet.toml:\n{}",
        new.join("\n")
    );
}

#[test]
fn unwrap_debt_stays_below_the_initial_baseline() {
    // The pre-ratchet tree carried 213 `unwrap()` sites (192 in first-party
    // code by the original grep survey). The baseline may only shrink; this
    // pins the burn-down so debt can never quietly climb back over it.
    let report = btr_analyzer::run_check(workspace_root()).expect("self-check runs");
    let unwrap_debt: u64 = report
        .ratchet_counts
        .iter()
        .filter(|(key, _)| key.ends_with("#unwrap"))
        .map(|(_, count)| count)
        .sum();
    assert!(
        unwrap_debt < 192,
        "unwrap debt {unwrap_debt} crossed the 192-site survey figure — \
         convert new unwrap() calls to expect(\"why\") or `?`"
    );
}

#[test]
fn findings_reports_roundtrip_on_both_codecs() {
    let report = btr_analyzer::run_check(workspace_root()).expect("self-check runs");
    assert!(
        !report.findings.is_empty(),
        "a ratcheted tree still reports"
    );

    let json = report.to_json().expect("report encodes as JSON");
    let via_json = Report::from_json(&json).expect("report JSON decodes");
    assert_eq!(via_json, report);

    let via_btrw = Report::from_btrw(&report.to_btrw()).expect("report BTRW decodes");
    assert_eq!(via_btrw, report);

    // A single finding round-trips standalone too.
    let finding = report.findings[0].clone();
    let back = Finding::from_json(&finding.to_json().expect("finding encodes as JSON"))
        .expect("finding JSON decodes");
    assert_eq!(back, finding);
    assert_eq!(
        Finding::from_btrw(&finding.to_btrw()).expect("finding BTRW decodes"),
        finding
    );

    // Canonical JSON: encoding is byte-stable across decode/encode cycles.
    assert_eq!(via_json.to_json().expect("re-encode"), json);
}
