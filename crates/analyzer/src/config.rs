//! The checked-in `analyzer-ratchet.toml` baseline: parser and rewriter.
//!
//! The file is a deliberately small TOML subset — `[section]` headers, `#`
//! comments, and `"key" = <integer>` entries — so both this crate and the
//! independent Python gate (`scripts/ratchet_gate.py`) parse it with a page
//! of code and no dependency. Two kinds of section live in it:
//!
//! * **Ratchet sections** (`[panic-path]`): per-`file#category` finding
//!   counts that may only decrease. `btr-analyzer ratchet` rewrites them from
//!   the current tree; `btr-analyzer check` fails if any count is exceeded.
//! * **Allowlist sections** (`[determinism]`, `[unsafe-gate]`,
//!   `[no-wallclock]`, `[structural]`): per-site permitted counts. Every
//!   entry must carry a written justification as the comment line(s)
//!   immediately above it — an entry without one is itself a finding.

use std::collections::BTreeMap;
use std::fmt;

/// One `"key" = count` entry with the comment lines directly above it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// The entry key, conventionally `<rel_path>#<category>`.
    pub key: String,
    /// The permitted (allowlist) or baseline (ratchet) count.
    pub count: u64,
    /// The `#` comment lines immediately preceding the entry, `#` stripped.
    pub justification: Vec<String>,
    /// 1-based line of the entry in the config file.
    pub line: u32,
}

/// The parsed config: entries grouped by section, insertion-ordered within a
/// section.
#[derive(Debug, Clone, Default)]
pub struct Config {
    sections: BTreeMap<String, Vec<Entry>>,
}

/// A config-file syntax error with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line the error was detected on.
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Config {
    /// Parses the config text.
    ///
    /// # Errors
    ///
    /// Fails on entries outside any section, malformed entries, or duplicate
    /// keys within a section.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let mut sections: BTreeMap<String, Vec<Entry>> = BTreeMap::new();
        let mut current: Option<String> = None;
        let mut pending_comments: Vec<String> = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = (idx + 1) as u32;
            let line = raw.trim();
            if line.is_empty() {
                pending_comments.clear();
                continue;
            }
            if let Some(comment) = line.strip_prefix('#') {
                pending_comments.push(comment.trim().to_string());
                continue;
            }
            if let Some(name) = line.strip_prefix('[') {
                let name = name.strip_suffix(']').ok_or_else(|| ConfigError {
                    line: line_no,
                    message: format!("unterminated section header {line:?}"),
                })?;
                current = Some(name.trim().to_string());
                sections.entry(name.trim().to_string()).or_default();
                pending_comments.clear();
                continue;
            }
            let (key_part, value_part) = line.split_once('=').ok_or_else(|| ConfigError {
                line: line_no,
                message: format!("expected `\"key\" = count`, got {line:?}"),
            })?;
            let key = key_part.trim().trim_matches('"').to_string();
            let count: u64 = value_part.trim().parse().map_err(|_| ConfigError {
                line: line_no,
                message: format!("count is not an unsigned integer: {}", value_part.trim()),
            })?;
            let section = current.clone().ok_or_else(|| ConfigError {
                line: line_no,
                message: "entry before any [section] header".to_string(),
            })?;
            let entries = sections.entry(section).or_default();
            if entries.iter().any(|e| e.key == key) {
                return Err(ConfigError {
                    line: line_no,
                    message: format!("duplicate key {key:?}"),
                });
            }
            entries.push(Entry {
                key,
                count,
                justification: std::mem::take(&mut pending_comments),
                line: line_no,
            });
        }
        Ok(Config { sections })
    }

    /// The entries of one section, empty if the section is absent.
    pub fn section(&self, name: &str) -> &[Entry] {
        self.sections.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The count for `key` in `section`, if present.
    pub fn count(&self, section: &str, key: &str) -> Option<u64> {
        self.section(section)
            .iter()
            .find(|e| e.key == key)
            .map(|e| e.count)
    }

    /// Rewrites the `[panic-path]` section of the original file text with
    /// `counts` (sorted by key), preserving every other line verbatim.
    ///
    /// Used by `btr-analyzer ratchet` so allowlist sections and their
    /// justification comments survive a ratchet tightening untouched.
    pub fn rewrite_ratchet_section(
        original: &str,
        section: &str,
        counts: &BTreeMap<String, u64>,
    ) -> String {
        let mut out: Vec<String> = Vec::new();
        let mut in_target = false;
        let mut emitted = false;
        for raw in original.lines() {
            let trimmed = raw.trim();
            if let Some(name) = trimmed.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                if name.trim() == section {
                    in_target = true;
                    emitted = true;
                    out.push(raw.to_string());
                    for (key, count) in counts {
                        out.push(format!("\"{key}\" = {count}"));
                    }
                    continue;
                }
                if in_target {
                    // Leaving the rewritten section: keep one separating blank.
                    if out.last().is_some_and(|l| !l.is_empty()) {
                        out.push(String::new());
                    }
                }
                in_target = false;
            }
            if !in_target {
                out.push(raw.to_string());
            }
        }
        if !emitted {
            if out.last().is_some_and(|l| !l.is_empty()) {
                out.push(String::new());
            }
            out.push(format!("[{section}]"));
            for (key, count) in counts {
                out.push(format!("\"{key}\" = {count}"));
            }
        }
        let mut text = out.join("\n");
        text.push('\n');
        text
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# file comment

[panic-path]
\"crates/a/src/x.rs#unwrap\" = 3

[determinism]
# ids depend only on first-appearance order
# (see interner_determinism.rs)
\"crates/trace/src/interned.rs#HashMap\" = 2
\"crates/b/src/y.rs#HashSet\" = 1
";

    #[test]
    fn parses_sections_entries_and_justifications() {
        let cfg = Config::parse(SAMPLE).expect("sample config parses");
        assert_eq!(cfg.count("panic-path", "crates/a/src/x.rs#unwrap"), Some(3));
        let det = cfg.section("determinism");
        assert_eq!(det.len(), 2);
        assert_eq!(det[0].justification.len(), 2);
        assert!(det[0].justification[0].contains("first-appearance"));
        // The blank-line-separated file comment does not leak onto entries.
        assert!(cfg.section("panic-path")[0].justification.is_empty());
        // The second determinism entry has no justification of its own.
        assert!(det[1].justification.is_empty());
        assert_eq!(cfg.count("missing", "x"), None);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Config::parse("\"k\" = 1").is_err(), "entry before section");
        assert!(
            Config::parse("[s]\n\"k\" = x").is_err(),
            "non-integer count"
        );
        assert!(Config::parse("[s\n").is_err(), "unterminated header");
        assert!(
            Config::parse("[s]\n\"k\" = 1\n\"k\" = 2").is_err(),
            "duplicate key"
        );
    }

    #[test]
    fn ratchet_rewrite_preserves_other_sections() {
        let mut counts = BTreeMap::new();
        counts.insert("crates/a/src/x.rs#unwrap".to_string(), 1u64);
        counts.insert("crates/c/src/z.rs#panic".to_string(), 4u64);
        let rewritten = Config::rewrite_ratchet_section(SAMPLE, "panic-path", &counts);
        let cfg = Config::parse(&rewritten).expect("rewritten config parses");
        assert_eq!(cfg.count("panic-path", "crates/a/src/x.rs#unwrap"), Some(1));
        assert_eq!(cfg.count("panic-path", "crates/c/src/z.rs#panic"), Some(4));
        assert_eq!(cfg.section("panic-path").len(), 2);
        // Determinism section and its justification survive verbatim.
        let det = cfg.section("determinism");
        assert_eq!(det.len(), 2);
        assert_eq!(det[0].justification.len(), 2);
    }

    #[test]
    fn ratchet_rewrite_appends_missing_section() {
        let mut counts = BTreeMap::new();
        counts.insert("a#unwrap".to_string(), 2u64);
        let rewritten = Config::rewrite_ratchet_section("[determinism]\n", "panic-path", &counts);
        let cfg = Config::parse(&rewritten).expect("appended config parses");
        assert_eq!(cfg.count("panic-path", "a#unwrap"), Some(2));
    }
}
