//! `unsafe-gate`: the workspace-wide no-`unsafe` pledge, machine-checked.
//!
//! The performance story of this repository (devirtualized hot paths, fused
//! sweep arenas, SWAR plans) is deliberately built on safe Rust — the
//! ROADMAP's bit-parallel work is scoped "without `unsafe`". Two checks keep
//! that a property instead of a convention:
//!
//! * every crate root (`src/lib.rs` of the facade, each workspace member and
//!   each vendored stand-in) must carry `#![forbid(unsafe_code)]`, so a
//!   stray `unsafe` block is a *compile* error crate-wide;
//! * any `unsafe` token anywhere in the tree — tests, benches and examples
//!   included, where `forbid` attributes don't reach — is a finding unless
//!   allowlisted in `[unsafe-gate]` with a justification. The one current
//!   entry is the counting global-allocator shim in
//!   `crates/sim/tests/streamed_memory.rs`, whose `GlobalAlloc` impl is
//!   unsafe by trait contract.

use super::{finding, reconcile, Context, Mode};
use crate::findings::{Finding, Report};
use crate::lexer::{Token, TokenKind};
use std::collections::BTreeMap;

/// Pass name, used in findings and as the config section.
pub const PASS: &str = "unsafe-gate";

/// Runs the pass over every scanned file.
pub fn run(ctx: &Context<'_>, report: &mut Report) {
    let mut found: BTreeMap<String, Vec<Finding>> = BTreeMap::new();
    for lexed in ctx.files {
        let path = lexed.file.rel_path.as_str();
        for tok in &lexed.stream.tokens {
            if tok.kind == TokenKind::Ident && tok.text == "unsafe" {
                let f = finding(
                    PASS,
                    "unsafe",
                    path,
                    tok.line,
                    "`unsafe` in a forbid(unsafe_code) workspace".to_string(),
                );
                found.entry(f.key()).or_default().push(f);
            }
        }
        if lexed.file.is_crate_root() && !has_forbid_unsafe(&lexed.stream.tokens) {
            report.findings.push(finding(
                PASS,
                "forbid-missing",
                path,
                1,
                "crate root lacks #![forbid(unsafe_code)]".to_string(),
            ));
        }
    }
    reconcile(PASS, PASS, Mode::Allowlist, found, ctx, report);
}

/// Whether the token sequence `# ! [ forbid ( unsafe_code ) ]` occurs.
fn has_forbid_unsafe(tokens: &[Token]) -> bool {
    tokens.windows(8).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident("forbid")
            && w[4].is_punct('(')
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(')')
            && w[7].is_punct(']')
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::files::{Scope, SourceFile};
    use crate::lexer::TokenStream;
    use crate::passes::LexedFile;
    use std::path::Path;

    fn run_on(rel_path: &str, source: &str, config: &str) -> Report {
        let config = Config::parse(config).expect("test config parses");
        let files = vec![LexedFile {
            file: SourceFile {
                rel_path: rel_path.to_string(),
                scope: Scope::WorkspaceTest,
                source: source.to_string(),
            },
            stream: TokenStream::lex(source),
        }];
        let ctx = Context {
            root: Path::new("."),
            files: &files,
            config: &config,
        };
        let mut report = Report::default();
        run(&ctx, &mut report);
        report.finalize();
        report
    }

    #[test]
    fn missing_forbid_on_crate_root_is_flagged() {
        let report = run_on("crates/x/src/lib.rs", "//! docs\npub fn f() {}", "");
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].category, "forbid-missing");
        let ok = run_on(
            "crates/x/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {}",
            "",
        );
        assert!(ok.findings.is_empty());
    }

    #[test]
    fn unsafe_tokens_need_an_allowlist_entry() {
        let src = "unsafe impl X for Y { unsafe fn f(&self) {} }";
        let report = run_on("crates/x/tests/shim.rs", src, "");
        assert_eq!(report.unratcheted_count(), 2);
        let allow = "[unsafe-gate]\n# GlobalAlloc shim is unsafe by trait contract\n\
                     \"crates/x/tests/shim.rs#unsafe\" = 2\n";
        assert_eq!(
            run_on("crates/x/tests/shim.rs", src, allow).unratcheted_count(),
            0
        );
    }

    #[test]
    fn unsafe_in_comments_or_strings_is_invisible() {
        let src = "// unsafe\nlet s = \"unsafe\"; /* unsafe */ fn f() {}";
        assert!(run_on("crates/x/tests/t.rs", src, "").findings.is_empty());
    }
}
