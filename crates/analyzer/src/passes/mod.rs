//! The lint and structural passes, and the shared ratchet/allowlist logic.
//!
//! Each pass walks the lexed token streams (or the manifests, for the
//! structural pass) and reports [`Finding`]s. Findings are then reconciled
//! against the checked-in `analyzer-ratchet.toml`:
//!
//! * a **ratchet** section covers up to its recorded per-`file#category`
//!   count — existing debt is tolerated, new debt fails, and shrinking debt
//!   invites a `btr-analyzer ratchet` run to lock in the lower count;
//! * an **allowlist** section covers exactly its recorded count — exceeding
//!   it fails, and so does a stale entry (more allowed than found), so the
//!   file can never quietly drift out of sync with the tree. Every allowlist
//!   entry must carry a justification comment directly above it.

pub mod determinism;
pub mod panic_path;
pub mod structural;
pub mod unsafe_gate;
pub mod wallclock;

use crate::config::Config;
use crate::files::SourceFile;
use crate::findings::{Finding, Report};
use crate::lexer::TokenStream;
use std::collections::BTreeMap;
use std::path::Path;

/// A source file with its lexed token stream.
#[derive(Debug)]
pub struct LexedFile {
    /// The discovered file.
    pub file: SourceFile,
    /// Its tokens and `#[cfg(test)]` mask.
    pub stream: TokenStream,
}

/// Everything a pass sees.
#[derive(Debug)]
pub struct Context<'a> {
    /// The workspace root.
    pub root: &'a Path,
    /// Every scanned file, path-sorted.
    pub files: &'a [LexedFile],
    /// The parsed `analyzer-ratchet.toml`.
    pub config: &'a Config,
}

/// How findings reconcile against a config section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Baseline counts that may only decrease; shrinkage is informational.
    Ratchet,
    /// Exact permitted counts with mandatory justification; both excess and
    /// stale entries fail.
    Allowlist,
}

/// Runs every pass and reconciles the findings.
pub fn run_all(ctx: &Context<'_>, report: &mut Report) {
    audit_allowlist_justifications(ctx, report);
    panic_path::run(ctx, report);
    determinism::run(ctx, report);
    unsafe_gate::run(ctx, report);
    wallclock::run(ctx, report);
    structural::run(ctx, report);
}

/// Fails any allowlist entry that carries no justification comment.
fn audit_allowlist_justifications(ctx: &Context<'_>, report: &mut Report) {
    for section in ["determinism", "unsafe-gate", "no-wallclock", "structural"] {
        for entry in ctx.config.section(section) {
            if entry.justification.iter().all(|l| l.trim().is_empty()) {
                report.findings.push(Finding {
                    pass: section.to_string(),
                    category: "missing-justification".to_string(),
                    file: crate::RATCHET_FILE.to_string(),
                    line: entry.line,
                    message: format!(
                        "allowlist entry \"{}\" has no justification comment above it",
                        entry.key
                    ),
                    ratcheted: false,
                });
            }
        }
    }
}

/// Reconciles one pass's raw findings (grouped by `file#category` key)
/// against its config section and pushes them onto the report.
///
/// The first `allowed` findings of a key (in source order) are marked
/// ratcheted; the excess is unratcheted. A key found fewer times than its
/// recorded count produces a stale-entry finding — informational under
/// [`Mode::Ratchet`], failing under [`Mode::Allowlist`].
pub fn reconcile(
    pass: &str,
    section: &str,
    mode: Mode,
    mut found: BTreeMap<String, Vec<Finding>>,
    ctx: &Context<'_>,
    report: &mut Report,
) {
    // Entries in the config with no findings at all still need stale checks.
    for entry in ctx.config.section(section) {
        found.entry(entry.key.clone()).or_default();
    }
    for (key, findings) in found {
        let allowed = ctx.config.count(section, &key).unwrap_or(0) as usize;
        let count = findings.len();
        if mode == Mode::Ratchet && count > 0 {
            report.ratchet_counts.insert(key.clone(), count as u64);
        }
        for (idx, mut finding) in findings.into_iter().enumerate() {
            finding.ratcheted = idx < allowed;
            report.findings.push(finding);
        }
        if count < allowed {
            let (category, verb, ratcheted) = match mode {
                Mode::Ratchet => (
                    "stale-ratchet",
                    "ratchet down with `btr-analyzer ratchet`",
                    true,
                ),
                Mode::Allowlist => ("stale-allowlist", "tighten the allowlist entry", false),
            };
            report.findings.push(Finding {
                pass: pass.to_string(),
                category: category.to_string(),
                file: crate::RATCHET_FILE.to_string(),
                line: 0,
                message: format!("\"{key}\" records {allowed} but only {count} found — {verb}"),
                ratcheted,
            });
        }
    }
}

/// Builds an unratcheted finding (reconciliation decides the final flag).
pub fn finding(pass: &str, category: &str, file: &str, line: u32, message: String) -> Finding {
    Finding {
        pass: pass.to_string(),
        category: category.to_string(),
        file: file.to_string(),
        line,
        message,
        ratcheted: false,
    }
}
