//! `determinism`: no iteration-order-dependent containers near results.
//!
//! Everything this workspace serializes — sweep results, interned id tables,
//! wire artifacts — is promised bit-identical across runs, chunkings and
//! thread counts. `std::collections::HashMap`/`HashSet` iterate in a
//! per-process random order (SipHash keyed per instantiation), so a map that
//! *feeds* a result is a latent nondeterminism bug that no single test run
//! can catch.
//!
//! This pass flags every `HashMap`/`HashSet` identifier in first-party
//! library code (test modules exempt — a test-local map cannot reach a
//! result). Sites that are provably order-independent are allowlisted in
//! `[determinism]` with a written justification, e.g. the interner's
//! lookup-only map whose ids come from first-appearance order (proven by
//! `crates/trace/tests/interner_determinism.rs`). The allowlist is exact:
//! adding a site fails until justified, removing one fails until the entry
//! is dropped.

use super::{finding, reconcile, Context, Mode};
use crate::files::Scope;
use crate::findings::{Finding, Report};
use crate::lexer::TokenKind;
use std::collections::BTreeMap;

/// Pass name, used in findings and as the config section.
pub const PASS: &str = "determinism";

/// The flagged container type names.
const CONSTRUCTS: [&str; 2] = ["HashMap", "HashSet"];

/// Runs the pass over first-party library files.
pub fn run(ctx: &Context<'_>, report: &mut Report) {
    let mut found: BTreeMap<String, Vec<Finding>> = BTreeMap::new();
    for lexed in ctx.files {
        if lexed.file.scope != Scope::WorkspaceLib {
            continue;
        }
        for (i, tok) in lexed.stream.tokens.iter().enumerate() {
            if tok.kind != TokenKind::Ident
                || lexed.stream.in_test[i]
                || !CONSTRUCTS.contains(&tok.text.as_str())
            {
                continue;
            }
            let f = finding(
                PASS,
                &tok.text,
                &lexed.file.rel_path,
                tok.line,
                format!(
                    "{} in result-feeding library code iterates in random order",
                    tok.text
                ),
            );
            found.entry(f.key()).or_default().push(f);
        }
    }
    reconcile(PASS, PASS, Mode::Allowlist, found, ctx, report);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::files::SourceFile;
    use crate::lexer::TokenStream;
    use crate::passes::LexedFile;
    use std::path::Path;

    fn run_on(source: &str, scope: Scope, config: &str) -> Report {
        let config = Config::parse(config).expect("test config parses");
        let files = vec![LexedFile {
            file: SourceFile {
                rel_path: "crates/x/src/lib.rs".to_string(),
                scope,
                source: source.to_string(),
            },
            stream: TokenStream::lex(source),
        }];
        let ctx = Context {
            root: Path::new("."),
            files: &files,
            config: &config,
        };
        let mut report = Report::default();
        run(&ctx, &mut report);
        report.finalize();
        report
    }

    const TWO_SITES: &str = "use std::collections::HashMap;\nstruct S { m: HashMap<u64, u32> }\n\
                             #[cfg(test)]\nmod tests { use std::collections::HashMap; }";

    #[test]
    fn flags_lib_sites_not_test_sites() {
        let report = run_on(TWO_SITES, Scope::WorkspaceLib, "");
        assert_eq!(report.findings.len(), 2);
        assert_eq!(report.unratcheted_count(), 2);
    }

    #[test]
    fn exact_allowlist_is_green_excess_and_stale_fail() {
        let allow = "[determinism]\n# lookup-only, ids from first-appearance order\n\
                     \"crates/x/src/lib.rs#HashMap\" = 2\n";
        assert_eq!(
            run_on(TWO_SITES, Scope::WorkspaceLib, allow).unratcheted_count(),
            0
        );
        // A third site exceeds the allowance.
        let three = format!("{TWO_SITES}\nfn f(x: &HashMap<u8, u8>) {{}}");
        assert_eq!(
            run_on(&three, Scope::WorkspaceLib, allow).unratcheted_count(),
            1
        );
        // Removing all sites leaves the entry stale, which also fails.
        let report = run_on("fn ok() {}", Scope::WorkspaceLib, allow);
        assert_eq!(report.unratcheted_count(), 1);
        assert!(report.findings[0].category == "stale-allowlist");
    }

    #[test]
    fn vendor_and_test_scopes_are_out_of_scope() {
        assert!(run_on(TWO_SITES, Scope::Vendor, "").findings.is_empty());
        assert!(run_on(TWO_SITES, Scope::WorkspaceTest, "")
            .findings
            .is_empty());
    }
}
