//! `panic-path`: ratcheted panic-site accounting for library code.
//!
//! Every optimization layer in this workspace promises bit-identical results
//! on *untrusted* input — traces and wire bytes that arrive over the serving
//! path. A stray `unwrap()` on such a path turns malformed input into a
//! process abort. This pass counts panic sites per file and category and
//! holds them to the checked-in baseline (`[panic-path]` in
//! `analyzer-ratchet.toml`), whose counts may only decrease:
//!
//! * **`unwrap`** — `unwrap()` calls, counted *everywhere* in library source
//!   files, `#[cfg(test)]` modules included: a bare unwrap in a test panics
//!   with nothing but a line number, while `expect("what invariant broke")`
//!   documents intent, so the ratchet drives both toward zero. This is the
//!   count the PR-6 burn-down seeded at well under its initial 192 sites.
//! * **`expect`** — `expect(…)` whose argument is not a string literal
//!   (non-test code only): `expect(msg_var)` hides the justification from
//!   the reader; the sanctioned form is a literal message.
//! * **`panic`** — `panic!`, `unreachable!`, `todo!`, `unimplemented!` in
//!   non-test code. Legitimate for documented `# Panics` contracts, hence
//!   ratcheted rather than forbidden.
//! * **`assert`** — `assert!`/`assert_eq!`/`assert_ne!` in non-test code
//!   (`debug_assert!` is exempt: it vanishes in release builds and cannot
//!   abort the serving path).
//!
//! Scope: workspace library sources and vendored sources. Integration tests,
//! benches and examples are harness code and exempt.

use super::{finding, reconcile, Context, Mode};
use crate::files::Scope;
use crate::findings::{Finding, Report};
use crate::lexer::{Token, TokenKind};
use std::collections::BTreeMap;

/// Pass name, used in findings and as the config section.
pub const PASS: &str = "panic-path";

/// Runs the pass over every in-scope file.
pub fn run(ctx: &Context<'_>, report: &mut Report) {
    let mut found: BTreeMap<String, Vec<Finding>> = BTreeMap::new();
    for lexed in ctx.files {
        if !matches!(lexed.file.scope, Scope::WorkspaceLib | Scope::Vendor) {
            continue;
        }
        let path = lexed.file.rel_path.as_str();
        let tokens = &lexed.stream.tokens;
        for (i, tok) in tokens.iter().enumerate() {
            if tok.kind != TokenKind::Ident {
                continue;
            }
            let in_test = lexed.stream.in_test[i];
            let site = match classify(tokens, i, in_test) {
                Some(site) => site,
                None => continue,
            };
            let f = finding(
                PASS,
                site.category,
                path,
                tok.line,
                format!("{} in {}", site.what, region(in_test)),
            );
            found.entry(f.key()).or_default().push(f);
        }
    }
    reconcile(PASS, PASS, Mode::Ratchet, found, ctx, report);
}

struct Site {
    category: &'static str,
    what: String,
}

/// Classifies the identifier at `i` as a panic site, if it is one.
fn classify(tokens: &[Token], i: usize, in_test: bool) -> Option<Site> {
    let tok = &tokens[i];
    let next = tokens.get(i + 1);
    let after = tokens.get(i + 2);
    if tok.is_ident("unwrap")
        && next.is_some_and(|t| t.is_punct('('))
        && after.is_some_and(|t| t.is_punct(')'))
    {
        return Some(Site {
            category: "unwrap",
            what: "`unwrap()`".to_string(),
        });
    }
    if in_test {
        return None;
    }
    if tok.is_ident("expect") && next.is_some_and(|t| t.is_punct('(')) {
        // `expect("literal message")` is the sanctioned, documented form.
        if !after.is_some_and(Token::is_string_literal) {
            return Some(Site {
                category: "expect",
                what: "`expect(…)` without a literal message".to_string(),
            });
        }
        return None;
    }
    let is_macro = next.is_some_and(|t| t.is_punct('!'));
    if !is_macro {
        return None;
    }
    if matches!(
        tok.text.as_str(),
        "panic" | "unreachable" | "todo" | "unimplemented"
    ) {
        return Some(Site {
            category: "panic",
            what: format!("`{}!`", tok.text),
        });
    }
    if matches!(tok.text.as_str(), "assert" | "assert_eq" | "assert_ne") {
        return Some(Site {
            category: "assert",
            what: format!("`{}!`", tok.text),
        });
    }
    None
}

fn region(in_test: bool) -> &'static str {
    if in_test {
        "a #[cfg(test)] module"
    } else {
        "library code"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::files::SourceFile;
    use crate::lexer::TokenStream;
    use crate::passes::LexedFile;
    use std::path::Path;

    fn run_on(source: &str, config: &str) -> Report {
        let config = Config::parse(config).expect("test config parses");
        let files = vec![LexedFile {
            file: SourceFile {
                rel_path: "crates/x/src/lib.rs".to_string(),
                scope: Scope::WorkspaceLib,
                source: source.to_string(),
            },
            stream: TokenStream::lex(source),
        }];
        let ctx = Context {
            root: Path::new("."),
            files: &files,
            config: &config,
        };
        let mut report = Report::default();
        run(&ctx, &mut report);
        report.finalize();
        report
    }

    #[test]
    fn counts_unwrap_everywhere_but_macros_only_outside_tests() {
        let src = "fn a() { x.unwrap(); panic!(\"boom\"); assert!(ok); }\n\
                   #[cfg(test)]\nmod tests { fn t() { y.unwrap(); panic!(\"fine\"); assert!(t); } }";
        let report = run_on(src, "");
        let by_cat = |c: &str| report.findings.iter().filter(|f| f.category == c).count();
        assert_eq!(by_cat("unwrap"), 2, "unwrap counted in tests too");
        assert_eq!(by_cat("panic"), 1, "panic! exempt inside #[cfg(test)]");
        assert_eq!(by_cat("assert"), 1);
        assert_eq!(report.unratcheted_count(), 4);
        assert_eq!(
            report.ratchet_counts.get("crates/x/src/lib.rs#unwrap"),
            Some(&2)
        );
    }

    #[test]
    fn literal_expect_passes_dynamic_expect_flagged() {
        let src = "fn a() { x.expect(\"why it holds\"); y.expect(msg); z.expect(r#\"raw why\"#); }";
        let report = run_on(src, "");
        let expects: Vec<&Finding> = report
            .findings
            .iter()
            .filter(|f| f.category == "expect")
            .collect();
        assert_eq!(expects.len(), 1);
        assert_eq!(expects[0].line, 1);
    }

    #[test]
    fn debug_assert_and_strings_are_exempt() {
        let src = "fn a() { debug_assert!(x); let s = \"unwrap()\"; // unwrap()\n }";
        let report = run_on(src, "");
        assert!(report.findings.is_empty());
    }

    #[test]
    fn baseline_ratchets_and_reports_shrinkage() {
        let src = "fn a() { x.unwrap(); }";
        // Baseline covers 2: the single finding is ratcheted, and the
        // shrinkage shows up as an informational stale-ratchet note.
        let report = run_on(src, "[panic-path]\n\"crates/x/src/lib.rs#unwrap\" = 2\n");
        assert_eq!(report.unratcheted_count(), 0);
        assert!(report
            .findings
            .iter()
            .any(|f| f.category == "stale-ratchet" && f.ratcheted));
        // Baseline of 1 is exact: no stale note, still green.
        let report = run_on(src, "[panic-path]\n\"crates/x/src/lib.rs#unwrap\" = 1\n");
        assert_eq!(report.unratcheted_count(), 0);
        assert_eq!(report.findings.len(), 1);
        // No baseline: the finding fails the run.
        let report = run_on(src, "");
        assert_eq!(report.unratcheted_count(), 1);
    }
}
