//! `structural`: cross-file invariants over manifests, CI config and docs.
//!
//! Three invariants that no compiler checks, each of which has silently
//! rotted in other projects:
//!
//! * **bench-gate coverage** — every `[[bench]]` target registered in
//!   `crates/bench/Cargo.toml` must be exercised by the CI `bench-baseline`
//!   job (a `cargo bench --bench <name>` line in
//!   `.github/workflows/ci.yml`), or be allowlisted with a reason (the
//!   paper-figure reproduction benches run minutes and are gated indirectly
//!   through the `reproduce` artifact checks);
//! * **wire roundtrip coverage** — every public type with an
//!   `impl Wire for T` in first-party library code must be named in at
//!   least one file under a `tests/` directory, so no wire format ships
//!   without an independent decode test;
//! * **vendor table** — every crate directory under `vendor/` must be named
//!   in the README's vendor documentation, so a new stand-in cannot land
//!   undocumented.
//!
//! Findings key as `<manifest>#bench:<name>`, `<file>#wire:<Type>` and
//! `README.md#vendor:<crate>` in the `[structural]` allowlist section, so
//! each exempted target is named (and justified) individually.

use super::{finding, reconcile, Context, Mode};
use crate::files::Scope;
use crate::findings::{Finding, Report};
use crate::lexer::TokenKind;
use std::collections::{BTreeMap, BTreeSet};
use std::fs;

/// Pass name, used in findings and as the config section.
pub const PASS: &str = "structural";

/// Runs the structural checks.
pub fn run(ctx: &Context<'_>, report: &mut Report) {
    let mut found: BTreeMap<String, Vec<Finding>> = BTreeMap::new();
    check_bench_gate(ctx, &mut found);
    check_wire_coverage(ctx, &mut found);
    check_vendor_table(ctx, &mut found);
    reconcile(PASS, PASS, Mode::Allowlist, found, ctx, report);
}

fn push(found: &mut BTreeMap<String, Vec<Finding>>, f: Finding) {
    found.entry(f.key()).or_default().push(f);
}

/// Every `[[bench]]` target appears in CI's bench-baseline job.
fn check_bench_gate(ctx: &Context<'_>, found: &mut BTreeMap<String, Vec<Finding>>) {
    let manifest = read(ctx, "crates/bench/Cargo.toml");
    let ci = read(ctx, ".github/workflows/ci.yml");
    // `cargo bench --bench <name>` occurrences, whitespace-tokenized so a
    // name can never match as a substring of another.
    let gated: BTreeSet<&str> = {
        let words: Vec<&str> = ci.split_whitespace().collect();
        words
            .windows(2)
            .filter(|w| w[0] == "--bench")
            .map(|w| w[1])
            .collect()
    };
    let mut lines = manifest.lines().enumerate().peekable();
    while let Some((_, line)) = lines.next() {
        if line.trim() != "[[bench]]" {
            continue;
        }
        // The name key follows the table header (possibly after comments).
        for (name_idx, name_line) in lines.by_ref() {
            let trimmed = name_line.trim();
            if trimmed.starts_with('#') || trimmed.is_empty() {
                continue;
            }
            if let Some(value) = trimmed.strip_prefix("name") {
                let name = value.trim_start_matches(['=', ' ']).trim_matches('"');
                if !gated.contains(name) {
                    push(
                        found,
                        finding(
                            PASS,
                            &format!("bench:{name}"),
                            "crates/bench/Cargo.toml",
                            (name_idx + 1) as u32,
                            format!(
                                "[[bench]] target {name:?} is not run by the CI bench-baseline job"
                            ),
                        ),
                    );
                }
            }
            break;
        }
    }
}

/// Every `impl Wire for T` type is named in a `tests/` file.
fn check_wire_coverage(ctx: &Context<'_>, found: &mut BTreeMap<String, Vec<Finding>>) {
    // Identifiers appearing in any integration-test file.
    let mut test_idents: BTreeSet<&str> = BTreeSet::new();
    for lexed in ctx.files {
        let in_tests_dir =
            lexed.file.rel_path.starts_with("tests/") || lexed.file.rel_path.contains("/tests/");
        if lexed.file.scope != Scope::WorkspaceTest || !in_tests_dir {
            continue;
        }
        for tok in &lexed.stream.tokens {
            if tok.kind == TokenKind::Ident {
                test_idents.insert(tok.text.as_str());
            }
        }
    }
    for lexed in ctx.files {
        if lexed.file.scope != Scope::WorkspaceLib {
            continue;
        }
        let tokens = &lexed.stream.tokens;
        for (i, tok) in tokens.iter().enumerate() {
            if !tok.is_ident("impl") || lexed.stream.in_test[i] {
                continue;
            }
            // Skip an optional generic parameter list: `impl<T> Wire for …`.
            let mut j = i + 1;
            if tokens.get(j).is_some_and(|t| t.is_punct('<')) {
                let mut depth = 0usize;
                while let Some(t) = tokens.get(j) {
                    if t.is_punct('<') {
                        depth += 1;
                    } else if t.is_punct('>') {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
            }
            let is_wire_impl = tokens.get(j).is_some_and(|t| t.is_ident("Wire"))
                && tokens.get(j + 1).is_some_and(|t| t.is_ident("for"));
            if !is_wire_impl {
                continue;
            }
            let Some(ty) = tokens.get(j + 2).filter(|t| t.kind == TokenKind::Ident) else {
                continue;
            };
            if !test_idents.contains(ty.text.as_str()) {
                push(
                    found,
                    finding(
                        PASS,
                        &format!("wire:{}", ty.text),
                        &lexed.file.rel_path,
                        ty.line,
                        format!(
                            "`impl Wire for {}` has no mention in any tests/ file — add a \
                             roundtrip test",
                            ty.text
                        ),
                    ),
                );
            }
        }
    }
}

/// Every `vendor/<crate>` directory is documented in the README.
fn check_vendor_table(ctx: &Context<'_>, found: &mut BTreeMap<String, Vec<Finding>>) {
    let readme = read(ctx, "README.md");
    let vendor_lines: Vec<&str> = readme
        .lines()
        .filter(|l| l.to_ascii_lowercase().contains("vendor"))
        .collect();
    let crates: BTreeSet<String> = ctx
        .files
        .iter()
        .filter_map(|l| {
            l.file
                .rel_path
                .strip_prefix("vendor/")
                .and_then(|rest| rest.split('/').next())
                .map(str::to_string)
        })
        .collect();
    for name in crates {
        if !vendor_lines.iter().any(|l| l.contains(&name)) {
            push(
                found,
                finding(
                    PASS,
                    &format!("vendor:{name}"),
                    "README.md",
                    0,
                    format!("vendored crate {name:?} is missing from the README vendor table"),
                ),
            );
        }
    }
}

/// Reads a workspace file, tolerating absence (a missing manifest simply
/// yields findings for everything it should have contained).
fn read(ctx: &Context<'_>, rel: &str) -> String {
    fs::read_to_string(ctx.root.join(rel)).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::files::SourceFile;
    use crate::lexer::TokenStream;
    use crate::passes::{Context, LexedFile};
    use std::path::Path;

    fn lexed(rel_path: &str, scope: Scope, source: &str) -> LexedFile {
        LexedFile {
            file: SourceFile {
                rel_path: rel_path.to_string(),
                scope,
                source: source.to_string(),
            },
            stream: TokenStream::lex(source),
        }
    }

    #[test]
    fn wire_impls_need_test_mentions() {
        let files = vec![
            lexed(
                "crates/x/src/lib.rs",
                Scope::WorkspaceLib,
                "impl Wire for Covered {}\nimpl Wire for Orphan {}\nimpl<T> Wire for Generic {}",
            ),
            lexed(
                "crates/x/tests/roundtrip.rs",
                Scope::WorkspaceTest,
                "fn t() { Covered::from_json(s); Generic::from_btrw(b); }",
            ),
        ];
        let config = Config::parse("").expect("empty config parses");
        let ctx = Context {
            root: Path::new("/nonexistent"),
            files: &files,
            config: &config,
        };
        let mut found = BTreeMap::new();
        check_wire_coverage(&ctx, &mut found);
        let keys: Vec<&String> = found.keys().collect();
        assert_eq!(keys, vec!["crates/x/src/lib.rs#wire:Orphan"]);
    }

    #[test]
    fn bench_names_match_whole_words_only() {
        // A gated name must not cover a differently named target by prefix.
        let dir = std::env::temp_dir().join("btr-analyzer-structural-test");
        std::fs::create_dir_all(dir.join("crates/bench")).expect("create temp manifest dir");
        std::fs::create_dir_all(dir.join(".github/workflows")).expect("create temp ci dir");
        std::fs::write(
            dir.join("crates/bench/Cargo.toml"),
            "[[bench]]\nname = \"fused\"\nharness = false\n[[bench]]\nname = \"fused_extra\"\n",
        )
        .expect("write temp manifest");
        std::fs::write(
            dir.join(".github/workflows/ci.yml"),
            "run: |\n  cargo bench --bench fused\n",
        )
        .expect("write temp ci config");
        let config = Config::parse("").expect("empty config parses");
        let ctx = Context {
            root: &dir,
            files: &[],
            config: &config,
        };
        let mut found = BTreeMap::new();
        check_bench_gate(&ctx, &mut found);
        let keys: Vec<&String> = found.keys().collect();
        assert_eq!(keys, vec!["crates/bench/Cargo.toml#bench:fused_extra"]);
    }
}
