//! `no-wallclock`: result-producing code never reads the clock.
//!
//! Reproducibility cuts deeper than hash ordering: a result that embeds a
//! timestamp or a measured duration differs on every run, which breaks the
//! byte-identical artifact comparisons CI performs (`check_artifacts.py`
//! diffs JSON against BTRW, sweep partials re-merge bit-identically, …).
//!
//! This pass flags `Instant` and `SystemTime` identifiers in first-party
//! library code outside `#[cfg(test)]` modules. Timing *display* — the
//! `[timing]` lines the `reproduce` binary prints to stderr alongside its
//! artifacts — is legitimate and allowlisted in `[no-wallclock]` with that
//! justification; the vendored criterion is a benchmark harness and out of
//! scope entirely.

use super::{finding, reconcile, Context, Mode};
use crate::files::Scope;
use crate::findings::{Finding, Report};
use crate::lexer::TokenKind;
use std::collections::BTreeMap;

/// Pass name, used in findings and as the config section.
pub const PASS: &str = "no-wallclock";

/// The flagged clock-reading type names.
const CONSTRUCTS: [&str; 2] = ["Instant", "SystemTime"];

/// Runs the pass over first-party library files.
pub fn run(ctx: &Context<'_>, report: &mut Report) {
    let mut found: BTreeMap<String, Vec<Finding>> = BTreeMap::new();
    for lexed in ctx.files {
        if lexed.file.scope != Scope::WorkspaceLib {
            continue;
        }
        for (i, tok) in lexed.stream.tokens.iter().enumerate() {
            if tok.kind != TokenKind::Ident
                || lexed.stream.in_test[i]
                || !CONSTRUCTS.contains(&tok.text.as_str())
            {
                continue;
            }
            let f = finding(
                PASS,
                &tok.text,
                &lexed.file.rel_path,
                tok.line,
                format!("{} read in result-producing library code", tok.text),
            );
            found.entry(f.key()).or_default().push(f);
        }
    }
    reconcile(PASS, PASS, Mode::Allowlist, found, ctx, report);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::files::SourceFile;
    use crate::lexer::TokenStream;
    use crate::passes::LexedFile;
    use std::path::Path;

    fn run_on(source: &str, config: &str) -> Report {
        let config = Config::parse(config).expect("test config parses");
        let files = vec![LexedFile {
            file: SourceFile {
                rel_path: "crates/x/src/timing.rs".to_string(),
                scope: Scope::WorkspaceLib,
                source: source.to_string(),
            },
            stream: TokenStream::lex(source),
        }];
        let ctx = Context {
            root: Path::new("."),
            files: &files,
            config: &config,
        };
        let mut report = Report::default();
        run(&ctx, &mut report);
        report.finalize();
        report
    }

    #[test]
    fn clock_reads_are_flagged_unless_allowlisted() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }";
        assert_eq!(run_on(src, "").unratcheted_count(), 2);
        let allow = "[no-wallclock]\n# timing display only, never part of a result\n\
                     \"crates/x/src/timing.rs#Instant\" = 2\n";
        assert_eq!(run_on(src, allow).unratcheted_count(), 0);
    }

    #[test]
    fn comment_mentions_are_invisible() {
        // The word "Instantiate" in a comment must not trip the lint — the
        // grep this lexer replaces could not tell the difference.
        let src = "fn g() {} // Instantiate processes and walk the schedule.";
        assert!(run_on(src, "").findings.is_empty());
    }
}
