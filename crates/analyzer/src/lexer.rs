//! A small Rust lexer producing line-spanned tokens.
//!
//! Every lint in this crate works on token streams, never on raw text, so a
//! `unwrap()` inside a string literal, a `HashMap` in a doc comment, or a
//! `panic!` in a `#[should_panic]` test name can never trip a pass. The lexer
//! handles the constructs that defeat grep:
//!
//! * line comments (`//`, `///`, `//!`) and block comments (`/* .. */`) with
//!   arbitrary nesting — doc comments carry doctests, so code inside *any*
//!   comment is invisible to the lints;
//! * string literals with escapes, raw strings with any number of `#` guards
//!   (`r#".."#`), byte strings (`b".."`, `br#".."#`) and C strings (`c".."`);
//! * char and byte-char literals (`'x'`, `'\''`, `b'u'`) disambiguated from
//!   lifetimes (`'a`, `'static`, `'_`);
//! * identifiers, numeric literals and single-character punctuation.
//!
//! After tokenization, [`TokenStream::mark_test_regions`] walks the stream
//! for `#[cfg(test)]` attributes and marks the brace-balanced item that
//! follows (a `mod tests { .. }` block, a shim `fn`/`impl`, …) so passes can
//! distinguish library code from in-file test code.

/// The flavor of a literal token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lit {
    /// `"…"` (escapes resolved lexically, content not interpreted).
    Str,
    /// `r"…"` / `r#"…"#` with any guard depth, including `br`/`cr` forms.
    RawStr,
    /// `'x'` or `'\n'`.
    Char,
    /// `b'x'`.
    Byte,
    /// `b"…"` (non-raw).
    ByteStr,
    /// Integer or float literal (prefix/suffix kept verbatim).
    Num,
}

/// A token kind. Whitespace and comments never produce tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// A lifetime or loop label (`'a`, `'static`, `'_`).
    Lifetime,
    /// A literal; see [`Lit`].
    Literal(Lit),
    /// A single punctuation character.
    Punct(char),
}

/// One spanned token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// The token text. For punctuation this is the single character; for
    /// literals it is the source spelling including quotes and prefixes.
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

impl Token {
    /// Whether this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }

    /// Whether this token is a (possibly raw, possibly byte) string literal —
    /// the accepted argument form for a documented `expect("…")`.
    pub fn is_string_literal(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::Literal(Lit::Str | Lit::RawStr | Lit::ByteStr)
        )
    }
}

/// A lexed file: the token vector plus a parallel `in_test` mask.
#[derive(Debug, Clone)]
pub struct TokenStream {
    /// The tokens in source order.
    pub tokens: Vec<Token>,
    /// `in_test[i]` is true when token `i` sits inside a `#[cfg(test)]` item.
    pub in_test: Vec<bool>,
}

impl TokenStream {
    /// Lexes `source` and marks `#[cfg(test)]` regions.
    pub fn lex(source: &str) -> TokenStream {
        let tokens = lex_tokens(source);
        let in_test = mark_test_regions(&tokens);
        TokenStream { tokens, in_test }
    }

    /// The number of tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the stream holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }
}

/// Lexes a whole source file into tokens.
fn lex_tokens(source: &str) -> Vec<Token> {
    let b = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                // Nested block comment: track depth, count newlines.
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                let start = i;
                let start_line = line;
                i = skip_quoted(b, i, &mut line);
                tokens.push(token(
                    TokenKind::Literal(Lit::Str),
                    source,
                    start,
                    i,
                    start_line,
                ));
            }
            b'\'' => {
                let start = i;
                let start_line = line;
                // Lifetime: `'` + identifier start, where the char after the
                // identifier start is NOT a closing quote ('a' is a char
                // literal, 'a  is a lifetime, '_' is a char, '_ a lifetime).
                let next = b.get(i + 1).copied();
                let after = b.get(i + 2).copied();
                let is_lifetime =
                    matches!(next, Some(n) if is_ident_start(n)) && after != Some(b'\'');
                if is_lifetime {
                    i += 2;
                    while i < b.len() && is_ident_continue(b[i]) {
                        i += 1;
                    }
                    tokens.push(token(TokenKind::Lifetime, source, start, i, start_line));
                } else {
                    i = skip_char_literal(b, i, &mut line);
                    tokens.push(token(
                        TokenKind::Literal(Lit::Char),
                        source,
                        start,
                        i,
                        start_line,
                    ));
                }
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                i += 1;
                while i < b.len() && (is_ident_continue(b[i]) || is_float_dot(b, i)) {
                    i += 1;
                }
                tokens.push(token(TokenKind::Literal(Lit::Num), source, start, i, line));
            }
            _ if is_ident_start(c) => {
                let start = i;
                i += 1;
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                let text = &source[start..i];
                // String-literal prefixes: r".."/r#".."#, b"..", br".., c"..,
                // cr".., and the byte-char b'x'.
                let next = b.get(i).copied();
                let raw_capable = matches!(text, "r" | "br" | "cr");
                let str_capable = raw_capable || matches!(text, "b" | "c");
                if str_capable && next == Some(b'"') || raw_capable && next == Some(b'#') {
                    let start_line = line;
                    let lit = if raw_capable {
                        i = skip_raw_string(b, i, &mut line);
                        Lit::RawStr
                    } else {
                        i = skip_quoted(b, i, &mut line);
                        if text == "b" {
                            Lit::ByteStr
                        } else {
                            Lit::Str
                        }
                    };
                    tokens.push(token(TokenKind::Literal(lit), source, start, i, start_line));
                } else if text == "b" && next == Some(b'\'') {
                    let start_line = line;
                    i = skip_char_literal(b, i + 1, &mut line);
                    tokens.push(token(
                        TokenKind::Literal(Lit::Byte),
                        source,
                        start,
                        i,
                        start_line,
                    ));
                } else {
                    tokens.push(token(TokenKind::Ident, source, start, i, line));
                }
            }
            _ if c.is_ascii() => {
                tokens.push(Token {
                    kind: TokenKind::Punct(c as char),
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
            _ => {
                // Non-ASCII outside a string/comment (e.g. a Unicode ident):
                // skip the full UTF-8 sequence without splitting it.
                i += 1;
                while i < b.len() && (b[i] & 0xC0) == 0x80 {
                    i += 1;
                }
            }
        }
    }
    tokens
}

fn token(kind: TokenKind, source: &str, start: usize, end: usize, line: u32) -> Token {
    Token {
        kind,
        text: source[start..end].to_string(),
        line,
    }
}

fn is_ident_start(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphabetic()
}

fn is_ident_continue(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric()
}

/// Whether the `.` at `i` continues a float literal (`1.5`) rather than
/// starting a range (`1..5`) or a method call (`1.max(2)`).
fn is_float_dot(b: &[u8], i: usize) -> bool {
    b[i] == b'.' && matches!(b.get(i + 1), Some(n) if n.is_ascii_digit())
}

/// Skips a `"…"` literal starting at the opening quote; returns the index
/// one past the closing quote.
fn skip_quoted(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1; // opening quote
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skips a raw string starting at the `#`s or quote after the `r`/`br`/`cr`
/// prefix; returns the index one past the closing delimiter.
fn skip_raw_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    let mut guards = 0usize;
    while i < b.len() && b[i] == b'#' {
        guards += 1;
        i += 1;
    }
    if i < b.len() && b[i] == b'"' {
        i += 1;
    }
    while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
            i += 1;
        } else if b[i] == b'"'
            && b[i + 1..]
                .iter()
                .take(guards)
                .filter(|c| **c == b'#')
                .count()
                == guards
        {
            return i + 1 + guards;
        } else {
            i += 1;
        }
    }
    i
}

/// Skips a char (or byte-char) literal starting at the opening `'`; returns
/// the index one past the closing quote.
fn skip_char_literal(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1; // opening quote
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            b'\n' => {
                // Unterminated char literal; bail at the newline so the rest
                // of the file still lexes.
                *line += 1;
                return i;
            }
            _ => i += 1,
        }
    }
    i
}

/// Marks the tokens belonging to `#[cfg(test)]` items.
///
/// On each exact `# [ cfg ( test ) ]` sequence, any further attribute groups
/// are skipped, then the following item is marked: everything up to its
/// terminating `;` for declarations, or through its brace-balanced `{ … }`
/// block for `mod`/`fn`/`impl`/`struct` items.
fn mark_test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if is_cfg_test_at(tokens, i) {
            let mut j = i + 7; // one past the closing `]`
                               // Skip any further attributes stacked on the same item.
            while j < tokens.len() && tokens[j].is_punct('#') {
                j = skip_attribute(tokens, j);
            }
            // Mark through the item's block (or to its `;` for block-less
            // items such as `#[cfg(test)] use …;` / `mod tests;`).
            let mut depth = 0usize;
            while j < tokens.len() {
                mask[j] = true;
                if tokens[j].is_punct('{') {
                    depth += 1;
                } else if tokens[j].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if tokens[j].is_punct(';') && depth == 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    mask
}

/// Whether the exact token sequence `# [ cfg ( test ) ]` starts at `i`.
fn is_cfg_test_at(tokens: &[Token], i: usize) -> bool {
    tokens.len() > i + 6
        && tokens[i].is_punct('#')
        && tokens[i + 1].is_punct('[')
        && tokens[i + 2].is_ident("cfg")
        && tokens[i + 3].is_punct('(')
        && tokens[i + 4].is_ident("test")
        && tokens[i + 5].is_punct(')')
        && tokens[i + 6].is_punct(']')
}

/// Skips one `#[…]` attribute group starting at the `#`; returns the index
/// one past its closing `]`.
fn skip_attribute(tokens: &[Token], mut i: usize) -> usize {
    i += 1; // `#`
    if i < tokens.len() && tokens[i].is_punct('!') {
        i += 1;
    }
    if i >= tokens.len() || !tokens[i].is_punct('[') {
        return i;
    }
    let mut depth = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('[') {
            depth += 1;
        } else if tokens[i].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        TokenStream::lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_hide_code() {
        let src = "// unwrap()\n/* panic! /* nested unwrap() */ still */ real";
        assert_eq!(idents(src), vec!["real"]);
    }

    #[test]
    fn nested_block_comments_track_lines() {
        let src = "/* a\n/* b\n*/\n*/ after";
        let ts = TokenStream::lex(src);
        assert_eq!(ts.tokens.len(), 1);
        assert_eq!(ts.tokens[0].line, 4);
    }

    #[test]
    fn strings_hide_code_and_raw_guards_are_respected() {
        let src = r####"let a = "unwrap()"; let b = r#"x " unwrap() "#; done"####;
        assert_eq!(idents(src), vec!["let", "a", "let", "b", "done"]);
    }

    #[test]
    fn char_byte_and_lifetime_disambiguation() {
        let src = "fn f<'a>(x: &'a str) { let c = '\\''; let d = 'z'; let e = b'u'; let f = '_'; }";
        let ts = TokenStream::lex(src);
        let lifetimes: Vec<&Token> = ts
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars = ts
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Literal(Lit::Char)))
            .count();
        assert_eq!(chars, 3, "'\\'' , 'z' and '_' are char literals");
        let bytes = ts
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Literal(Lit::Byte)))
            .count();
        assert_eq!(bytes, 1);
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let src = "for i in 0..16 { let x = 1.5e3; let y = 0x1f_u32; }";
        let ts = TokenStream::lex(src);
        let nums: Vec<String> = ts
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Literal(Lit::Num)))
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, vec!["0", "16", "1.5e3", "0x1f_u32"]);
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let src = "fn lib() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { y.unwrap(); } }";
        let ts = TokenStream::lex(src);
        let unwraps: Vec<bool> = ts
            .tokens
            .iter()
            .zip(&ts.in_test)
            .filter(|(t, _)| t.is_ident("unwrap"))
            .map(|(_, m)| *m)
            .collect();
        assert_eq!(unwraps, vec![false, true]);
    }

    #[test]
    fn cfg_test_with_stacked_attributes_and_semicolon_items() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nfn shim() { a.unwrap() }\n#[cfg(test)]\nuse std::x;\nfn real() { b.unwrap() }";
        let ts = TokenStream::lex(src);
        let flagged: Vec<(String, bool)> = ts
            .tokens
            .iter()
            .zip(&ts.in_test)
            .filter(|(t, _)| t.is_ident("unwrap") || t.is_ident("x"))
            .map(|(t, m)| (t.text.clone(), *m))
            .collect();
        assert_eq!(
            flagged,
            vec![
                ("unwrap".to_string(), true),
                ("x".to_string(), true),
                ("unwrap".to_string(), false)
            ]
        );
    }
}
