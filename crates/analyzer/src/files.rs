//! Workspace file discovery and scope classification.
//!
//! The lint passes scope themselves by *where* a file lives, not by
//! configuration: `src/` and `crates/*/src` are first-party library code and
//! get every pass; `crates/*/tests`, `crates/*/benches` and `examples/` are
//! harness code (only the `unsafe` scan applies); `vendor/*/src` is vendored
//! code (panic-path ratchet and `unsafe` scan apply, determinism and
//! wall-clock lints do not — the stand-ins never produce result data).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Where a source file sits in the workspace, which decides the passes that
/// apply to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// `src/**` or `crates/*/src/**`: first-party library code (binaries
    /// under `src/bin` included).
    WorkspaceLib,
    /// `crates/*/tests/**`, `crates/*/benches/**`, `examples/**` or a root
    /// `tests/**`: test and harness code.
    WorkspaceTest,
    /// `vendor/*/src/**` (and vendored `tests/`): offline stand-in code.
    Vendor,
}

/// One discovered source file: its workspace-relative path (forward slashes)
/// and scope.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    /// Scope class; see [`Scope`].
    pub scope: Scope,
    /// The file contents.
    pub source: String,
}

impl SourceFile {
    /// Whether this file is a crate root (`src/lib.rs`) that must carry
    /// `#![forbid(unsafe_code)]`.
    pub fn is_crate_root(&self) -> bool {
        self.rel_path == "src/lib.rs"
            || (self.rel_path.ends_with("/src/lib.rs")
                && (self.rel_path.starts_with("crates/") || self.rel_path.starts_with("vendor/")))
    }
}

/// Discovers every `.rs` file the analyzer scans, in deterministic
/// (path-sorted) order.
///
/// # Errors
///
/// Fails if a directory or file under the workspace cannot be read.
pub fn discover(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    collect(root, &root.join("src"), Scope::WorkspaceLib, &mut files)?;
    collect(
        root,
        &root.join("examples"),
        Scope::WorkspaceTest,
        &mut files,
    )?;
    collect(root, &root.join("tests"), Scope::WorkspaceTest, &mut files)?;
    for member in subdirs(&root.join("crates"))? {
        collect(root, &member.join("src"), Scope::WorkspaceLib, &mut files)?;
        collect(
            root,
            &member.join("tests"),
            Scope::WorkspaceTest,
            &mut files,
        )?;
        collect(
            root,
            &member.join("benches"),
            Scope::WorkspaceTest,
            &mut files,
        )?;
    }
    for member in subdirs(&root.join("vendor"))? {
        collect(root, &member.join("src"), Scope::Vendor, &mut files)?;
        collect(root, &member.join("tests"), Scope::Vendor, &mut files)?;
    }
    files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(files)
}

/// The sorted immediate subdirectories of `dir` (empty if `dir` is absent).
fn subdirs(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    if !dir.is_dir() {
        return Ok(out);
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            out.push(path);
        }
    }
    out.sort();
    Ok(out)
}

/// Recursively collects `.rs` files under `dir` into `files`.
fn collect(root: &Path, dir: &Path, scope: Scope, files: &mut Vec<SourceFile>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<Vec<PathBuf>>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect(root, &path, scope, files)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            files.push(SourceFile {
                rel_path: rel_path(root, &path),
                scope,
                source: fs::read_to_string(&path)?,
            });
        }
    }
    Ok(())
}

/// `path` relative to `root` with `/` separators, for stable cross-platform
/// ratchet keys.
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_root_detection() {
        let f = |p: &str, scope| SourceFile {
            rel_path: p.to_string(),
            scope,
            source: String::new(),
        };
        assert!(f("src/lib.rs", Scope::WorkspaceLib).is_crate_root());
        assert!(f("crates/core/src/lib.rs", Scope::WorkspaceLib).is_crate_root());
        assert!(f("vendor/rand/src/lib.rs", Scope::Vendor).is_crate_root());
        assert!(!f("crates/core/src/rates.rs", Scope::WorkspaceLib).is_crate_root());
        assert!(!f("src/bin/lib.rs", Scope::WorkspaceLib).is_crate_root());
    }
}
