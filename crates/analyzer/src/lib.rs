//! # btr-analyzer — workspace static analysis
//!
//! The properties that make this workspace's results trustworthy — sweep
//! output that is bit-identical across chunkings and thread counts, decode
//! paths that return typed errors instead of panicking on untrusted bytes,
//! a tree-wide no-`unsafe` pledge — were conventions enforced by review.
//! This crate makes them machine-checked, ratcheted CI citizens.
//!
//! Three layers:
//!
//! 1. a real Rust **lexer** ([`lexer`]) producing line-spanned tokens, so no
//!    lint ever fires inside a comment, string, or raw-string literal;
//! 2. **lint passes** ([`passes`]) over the token streams of `src/`,
//!    `crates/*/src` and `vendor/*/src` — [`passes::panic_path`] (ratcheted
//!    `unwrap()`/`expect`/`panic!`/`assert!` accounting),
//!    [`passes::determinism`] (no `HashMap`/`HashSet` feeding results
//!    without a justified allowlist entry), [`passes::unsafe_gate`]
//!    (`#![forbid(unsafe_code)]` on every crate root, no stray `unsafe`),
//!    and [`passes::wallclock`] (no clock reads in result-producing code);
//! 3. **structural cross-checks** ([`passes::structural`]) over the
//!    manifests, CI config and README — bench-gate coverage, wire roundtrip
//!    coverage, vendor-table completeness.
//!
//! Baselines and allowlists live in [`RATCHET_FILE`] at the workspace root;
//! findings serialize as canonical `btr-wire` JSON so CI can diff runs
//! byte-for-byte. The CLI (`cargo run -p btr-analyzer -- check`) exits
//! nonzero on any unratcheted finding; `-- ratchet` locks shrunken baseline
//! counts in.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod files;
pub mod findings;
pub mod lexer;
pub mod passes;

use config::Config;
use findings::Report;
use passes::{Context, LexedFile};
use std::fmt;
use std::fs;
use std::path::Path;

/// The checked-in baseline/allowlist file at the workspace root.
pub const RATCHET_FILE: &str = "analyzer-ratchet.toml";

/// An analyzer failure: I/O trouble or an unparsable config.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error(format!("I/O error: {e}"))
    }
}

/// Runs every pass over the workspace at `root` and returns the reconciled
/// report.
///
/// # Errors
///
/// Fails if the tree cannot be read or `analyzer-ratchet.toml` is missing or
/// malformed — configuration errors are loud, never skipped lints.
pub fn run_check(root: &Path) -> Result<Report, Error> {
    let config_path = root.join(RATCHET_FILE);
    let config_text = fs::read_to_string(&config_path).map_err(|e| {
        Error(format!(
            "cannot read {} (is --root the workspace root?): {e}",
            config_path.display()
        ))
    })?;
    let config = Config::parse(&config_text)
        .map_err(|e| Error(format!("{}: {e}", config_path.display())))?;
    run_with_config(root, &config)
}

/// [`run_check`] against an explicit, possibly synthetic configuration
/// (used by `ratchet`, which runs with an empty baseline to measure the
/// tree's true counts).
///
/// # Errors
///
/// Fails if the tree cannot be read.
pub fn run_with_config(root: &Path, config: &Config) -> Result<Report, Error> {
    let files = files::discover(root)?;
    let lexed: Vec<LexedFile> = files
        .into_iter()
        .map(|file| {
            let stream = lexer::TokenStream::lex(&file.source);
            LexedFile { file, stream }
        })
        .collect();
    let ctx = Context {
        root,
        files: &lexed,
        config,
    };
    let mut report = Report::default();
    passes::run_all(&ctx, &mut report);
    report.finalize();
    Ok(report)
}

/// Rewrites the `[panic-path]` section of `analyzer-ratchet.toml` with the
/// tree's current counts, preserving every allowlist section verbatim.
/// Returns the number of `file#category` entries written.
///
/// # Errors
///
/// Fails if the tree or config cannot be read or the file cannot be written.
pub fn run_ratchet(root: &Path) -> Result<usize, Error> {
    let config_path = root.join(RATCHET_FILE);
    let original = fs::read_to_string(&config_path).unwrap_or_default();
    // Measure with an empty baseline: ratchet_counts is exactly the tree.
    let report = run_with_config(root, &Config::default())?;
    let rewritten = Config::rewrite_ratchet_section(
        &original,
        passes::panic_path::PASS,
        &report.ratchet_counts,
    );
    fs::write(&config_path, rewritten)?;
    Ok(report.ratchet_counts.len())
}
