//! Findings: what a pass reports, and the canonical-JSON report CI diffs.
//!
//! Every finding carries the pass that produced it, a `category` (the
//! ratchet/allowlist key suffix), the file and line, and whether it is
//! *ratcheted* — already covered by the checked-in baseline or allowlist.
//! Ratcheted findings are informational; any unratcheted finding fails the
//! run. The report serializes through `btr-wire`'s canonical JSON writer, so
//! two runs over the same tree produce byte-identical artifacts.

use btr_wire::{MapBuilder, Value, Wire, WireError};
use std::collections::BTreeMap;

/// One lint or structural finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The pass that produced the finding (`panic-path`, `determinism`, …).
    pub pass: String,
    /// The ratchet/allowlist category within the pass (`unwrap`, `HashMap`…).
    pub category: String,
    /// Workspace-relative file, or a pseudo-path for structural findings.
    pub file: String,
    /// 1-based line, or 0 when the finding is file- or project-level.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
    /// Whether the baseline or an allowlist covers this finding.
    pub ratcheted: bool,
}

impl Finding {
    /// The `file#category` key this finding counts under.
    pub fn key(&self) -> String {
        format!("{}#{}", self.file, self.category)
    }
}

impl Wire for Finding {
    fn to_value(&self) -> Value {
        MapBuilder::new()
            .field("pass", self.pass.as_str())
            .field("category", self.category.as_str())
            .field("file", self.file.as_str())
            .field("line", u64::from(self.line))
            .field("message", self.message.as_str())
            .field("ratcheted", self.ratcheted)
            .build()
    }

    fn from_value(value: &Value) -> Result<Self, WireError> {
        Ok(Finding {
            pass: value.get("pass")?.as_str()?.to_string(),
            category: value.get("category")?.as_str()?.to_string(),
            file: value.get("file")?.as_str()?.to_string(),
            line: u32::try_from(value.get("line")?.as_u64()?)
                .map_err(|_| WireError::schema("finding line exceeds u32"))?,
            message: value.get("message")?.as_str()?.to_string(),
            ratcheted: value.get("ratcheted")?.as_bool()?,
        })
    }
}

/// The result of one full `check` run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// Every finding, sorted by (pass, file, line, category).
    pub findings: Vec<Finding>,
    /// Current per-`file#category` counts for the ratcheted pass — what
    /// `scripts/ratchet_gate.py` compares against the checked-in baseline.
    pub ratchet_counts: BTreeMap<String, u64>,
}

impl Report {
    /// Sorts findings into the canonical report order.
    pub fn finalize(&mut self) {
        self.findings.sort_by(|a, b| {
            (&a.pass, &a.file, a.line, &a.category).cmp(&(&b.pass, &b.file, b.line, &b.category))
        });
    }

    /// The findings not covered by the baseline or an allowlist.
    pub fn unratcheted(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.ratcheted)
    }

    /// Number of unratcheted findings (the run fails when nonzero).
    pub fn unratcheted_count(&self) -> usize {
        self.unratcheted().count()
    }
}

impl Wire for Report {
    fn to_value(&self) -> Value {
        let findings: Vec<Value> = self.findings.iter().map(Wire::to_value).collect();
        let mut counts = MapBuilder::new();
        for (key, count) in &self.ratchet_counts {
            counts = counts.field(key.as_str(), *count);
        }
        MapBuilder::new()
            .field("version", 1u64)
            .field("total", self.findings.len() as u64)
            .field("unratcheted", self.unratcheted_count() as u64)
            .field("findings", Value::List(findings))
            .field("ratchet_counts", counts.build())
            .build()
    }

    fn from_value(value: &Value) -> Result<Self, WireError> {
        let version = value.get("version")?.as_u64()?;
        if version != 1 {
            return Err(WireError::schema(format!(
                "unsupported findings report version {version}"
            )));
        }
        let findings = value
            .get("findings")?
            .as_list()?
            .iter()
            .map(Finding::from_value)
            .collect::<Result<Vec<Finding>, WireError>>()?;
        let entries = value.get("ratchet_counts")?.as_map()?;
        let mut ratchet_counts = BTreeMap::new();
        for (key, count) in entries {
            ratchet_counts.insert(key.clone(), count.as_u64()?);
        }
        let report = Report {
            findings,
            ratchet_counts,
        };
        if value.get("total")?.as_u64()? != report.findings.len() as u64
            || value.get("unratcheted")?.as_u64()? != report.unratcheted_count() as u64
        {
            return Err(WireError::schema(
                "report totals disagree with the findings list",
            ));
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut report = Report::default();
        report.findings.push(Finding {
            pass: "panic-path".to_string(),
            category: "unwrap".to_string(),
            file: "crates/a/src/x.rs".to_string(),
            line: 7,
            message: "`unwrap()` in library code".to_string(),
            ratcheted: true,
        });
        report.findings.push(Finding {
            pass: "determinism".to_string(),
            category: "HashMap".to_string(),
            file: "crates/a/src/x.rs".to_string(),
            line: 3,
            message: "HashMap in result-feeding crate".to_string(),
            ratcheted: false,
        });
        report
            .ratchet_counts
            .insert("crates/a/src/x.rs#unwrap".to_string(), 1);
        report.finalize();
        report
    }

    #[test]
    fn report_sorts_counts_and_roundtrips() {
        let report = sample();
        assert_eq!(report.findings[0].pass, "determinism");
        assert_eq!(report.unratcheted_count(), 1);
        let json = report.to_json().expect("report encodes to JSON");
        assert_eq!(Report::from_json(&json).expect("report decodes"), report);
        assert_eq!(
            Report::from_btrw(&report.to_btrw()).expect("report decodes from BTRW"),
            report
        );
    }

    #[test]
    fn tampered_totals_are_rejected() {
        let report = sample();
        let json = report
            .to_json()
            .expect("report encodes to JSON")
            .replace("\"unratcheted\":1", "\"unratcheted\":0");
        assert!(Report::from_json(&json).is_err());
    }
}
