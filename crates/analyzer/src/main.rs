//! The `btr-analyzer` CLI.
//!
//! ```text
//! btr-analyzer check [--root DIR] [--json FILE]   # exit 1 on new findings
//! btr-analyzer ratchet [--root DIR]               # lock in lower baselines
//! ```
//!
//! `check` prints every finding (ratcheted ones marked), writes the full
//! report as canonical `btr-wire` JSON when `--json` is given, and exits
//! nonzero if any finding is not covered by the baseline or an allowlist.
//! `ratchet` rewrites the `[panic-path]` section of `analyzer-ratchet.toml`
//! from the current tree so shrunken counts become the new ceiling.

use btr_analyzer::findings::Report;
use btr_wire::Wire;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("btr-analyzer: {message}");
            ExitCode::from(2)
        }
    }
}

struct Options {
    command: String,
    root: PathBuf,
    json: Option<PathBuf>,
}

fn parse_args(args: Vec<String>) -> Result<Options, String> {
    let mut command = None;
    let mut root = PathBuf::from(".");
    let mut json = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                root = PathBuf::from(it.next().ok_or("--root needs a directory argument")?);
            }
            "--json" => {
                json = Some(PathBuf::from(
                    it.next().ok_or("--json needs a file argument")?,
                ));
            }
            "check" | "ratchet" if command.is_none() => command = Some(arg),
            _ => return Err(format!("unrecognized argument {arg:?} (usage: {USAGE})")),
        }
    }
    Ok(Options {
        command: command.ok_or_else(|| format!("no command given (usage: {USAGE})"))?,
        root,
        json,
    })
}

const USAGE: &str = "btr-analyzer <check [--json FILE] | ratchet> [--root DIR]";

fn run(args: Vec<String>) -> Result<ExitCode, String> {
    let opts = parse_args(args)?;
    match opts.command.as_str() {
        "check" => check(&opts),
        "ratchet" => {
            let entries = btr_analyzer::run_ratchet(&opts.root).map_err(|e| e.to_string())?;
            println!(
                "ratchet: wrote {} per-file counts to {}",
                entries,
                btr_analyzer::RATCHET_FILE
            );
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command {other:?} (usage: {USAGE})")),
    }
}

fn check(opts: &Options) -> Result<ExitCode, String> {
    let report = btr_analyzer::run_check(&opts.root).map_err(|e| e.to_string())?;
    if let Some(path) = &opts.json {
        let json = report
            .to_json()
            .map_err(|e| format!("encoding findings report: {e}"))?;
        std::fs::write(path, json.as_bytes())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
    }
    print_report(&report);
    if report.unratcheted_count() == 0 {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::FAILURE)
    }
}

fn print_report(report: &Report) {
    for f in &report.findings {
        let mark = if f.ratcheted { "ratcheted" } else { "NEW" };
        if f.line > 0 {
            println!(
                "{}:{}: [{}/{}] {} ({mark})",
                f.file, f.line, f.pass, f.category, f.message
            );
        } else {
            println!(
                "{}: [{}/{}] {} ({mark})",
                f.file, f.pass, f.category, f.message
            );
        }
    }
    let ratcheted = report.findings.len() - report.unratcheted_count();
    println!(
        "analyzer: {} findings ({} ratcheted, {} new); ratchet debt: {} sites in {} file-categories",
        report.findings.len(),
        ratcheted,
        report.unratcheted_count(),
        report.ratchet_counts.values().sum::<u64>(),
        report.ratchet_counts.len(),
    );
    if report.unratcheted_count() > 0 {
        println!(
            "analyzer: FAIL — fix the NEW findings above, or justify them in {}",
            btr_analyzer::RATCHET_FILE
        );
    }
}
