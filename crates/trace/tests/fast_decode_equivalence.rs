//! Equivalence suite pinning the slice-based fast `BTRT` decoder
//! ([`FastBtrtReader`]) to the generic-`Read` reference path
//! ([`ChunkedTraceReader`]): over arbitrary traces, chunk sizes, socket-shaped
//! byte delivery, and — crucially — *every* truncation prefix and arbitrary
//! single-byte corruption, both decoders must produce bit-identical records,
//! interned ids **and errors** (same variant, same record index, same byte
//! offset, pinned by comparing the full `Debug` rendering).
//!
//! The fast path is an independent reimplementation of the record decode
//! (buffered slices + inlined varints instead of `Read` calls), so this suite
//! is what licenses routing production ingest through it.

use btr_trace::io::binary;
use btr_trace::{
    BranchAddr, BranchKind, BranchRecord, ChunkedTraceReader, FastBtrtReader, InternedRecord,
    Outcome, Trace, TraceMetadata,
};
use proptest::prelude::*;
use std::io::Read;

/// The chunk sizes every property is checked under.
const CHUNK_SIZES: [usize; 4] = [1, 7, 64, 100_000];

// ---------------------------------------------------------------------------
// Socket-shaped readers (mirrors `streamed_vs_eager.rs`): the fast path has
// its own refill loop, so fragmentation and `Interrupted` storms must be
// re-proven against it specifically.
// ---------------------------------------------------------------------------

/// Yields at most `max` bytes per `read` call.
struct TrickleReader<'a> {
    data: &'a [u8],
    max: usize,
}

impl Read for TrickleReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.data.len().min(buf.len()).min(self.max);
        buf[..n].copy_from_slice(&self.data[..n]);
        self.data = &self.data[n..];
        Ok(n)
    }
}

/// Returns `ErrorKind::Interrupted` before every successful read and then
/// yields at most `max` bytes.
struct InterruptingReader<'a> {
    inner: TrickleReader<'a>,
    ready: bool,
}

impl<'a> InterruptingReader<'a> {
    fn new(data: &'a [u8], max: usize) -> Self {
        InterruptingReader {
            inner: TrickleReader { data, max },
            ready: false,
        }
    }
}

impl Read for InterruptingReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if !self.ready {
            self.ready = true;
            return Err(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                "signal",
            ));
        }
        self.ready = false;
        self.inner.read(buf)
    }
}

// ---------------------------------------------------------------------------
// Drain helpers.
// ---------------------------------------------------------------------------

/// Everything a clean decode produced: records, interned conditionals, and
/// the id → address table.
type Drained = (Vec<BranchRecord>, Vec<InternedRecord>, Vec<BranchAddr>);

fn drain_slow(bytes: &[u8], chunk_records: usize) -> Drained {
    let mut reader =
        ChunkedTraceReader::btrt(bytes, chunk_records).expect("slow header must decode");
    let mut records = Vec::new();
    let mut conditional = Vec::new();
    for chunk in &mut reader {
        let chunk = chunk.expect("well-formed stream must decode (slow)");
        conditional.extend(chunk.conditional());
        records.extend(chunk.into_records());
    }
    let addrs = reader.addrs().to_vec();
    (records, conditional, addrs)
}

fn drain_fast<R: Read>(source: R, chunk_records: usize) -> Drained {
    let mut reader = FastBtrtReader::new(source, chunk_records).expect("fast header must decode");
    let mut records = Vec::new();
    let mut conditional = Vec::new();
    for (expected_index, chunk) in (&mut reader).enumerate() {
        let chunk = chunk.expect("well-formed stream must decode (fast)");
        assert_eq!(chunk.index(), expected_index);
        assert_eq!(chunk.first_record(), records.len() as u64);
        assert!(!chunk.is_empty(), "readers never yield empty chunks");
        conditional.extend(chunk.conditional());
        records.extend(chunk.into_records());
    }
    let addrs = reader.addrs().to_vec();
    (records, conditional, addrs)
}

/// A full decode attempt over possibly-malformed bytes: the records of every
/// *successful* chunk plus the terminal error, rendered via `Debug` so the
/// variant and every field (record index, byte offset, context) are compared.
type DecodeOutcome = (Vec<BranchRecord>, Option<String>);

fn outcome_slow(bytes: &[u8], chunk_records: usize) -> DecodeOutcome {
    let mut reader = match ChunkedTraceReader::btrt(bytes, chunk_records) {
        Ok(reader) => reader,
        Err(e) => return (Vec::new(), Some(format!("{e:?}"))),
    };
    let mut records = Vec::new();
    for chunk in &mut reader {
        match chunk {
            Ok(chunk) => records.extend(chunk.into_records()),
            Err(e) => return (records, Some(format!("{e:?}"))),
        }
    }
    (records, None)
}

fn outcome_fast(bytes: &[u8], chunk_records: usize) -> DecodeOutcome {
    let mut reader = match FastBtrtReader::new(bytes, chunk_records) {
        Ok(reader) => reader,
        Err(e) => return (Vec::new(), Some(format!("{e:?}"))),
    };
    let mut records = Vec::new();
    for chunk in &mut reader {
        match chunk {
            Ok(chunk) => records.extend(chunk.into_records()),
            Err(e) => return (records, Some(format!("{e:?}"))),
        }
    }
    (records, None)
}

// ---------------------------------------------------------------------------
// Trace generators.
// ---------------------------------------------------------------------------

/// A characteristic trace mixing kinds, targets (two varints per record),
/// wraparound deltas and repeated addresses — every field boundary a record
/// can have shows up in its encoding.
fn adversarial_trace(len: u64) -> Trace {
    let mut records = Vec::new();
    for i in 0..len {
        let addr = if i % 13 == 12 {
            // Huge backward/forward jumps exercise 10-byte varint deltas.
            BranchAddr::new(0xffff_ffff_0000_0000u64.wrapping_add(i))
        } else {
            BranchAddr::new(0x40_0000 + (i % 11) * 4)
        };
        let kind = match i % 5 {
            4 => BranchKind::Call,
            3 => BranchKind::Return,
            _ => BranchKind::Conditional,
        };
        let mut r = BranchRecord::new(addr, kind, Outcome::from_bool(i % 3 != 0));
        if i % 7 == 6 {
            r = r.with_target(BranchAddr::new(0x8000_0000 + i * 16));
        }
        records.push(r);
    }
    Trace::from_records(
        TraceMetadata::named("fast-vs-slow")
            .with_input_set("equivalence")
            .with_seed(0xFA57),
        records,
    )
}

fn encode(trace: &Trace) -> Vec<u8> {
    let mut buf = Vec::new();
    binary::write_trace(&mut buf, trace).expect("writing to a Vec cannot fail");
    buf
}

fn arb_kind() -> impl Strategy<Value = BranchKind> {
    prop_oneof![
        Just(BranchKind::Conditional),
        Just(BranchKind::Conditional),
        Just(BranchKind::Conditional),
        Just(BranchKind::Unconditional),
        Just(BranchKind::Call),
        Just(BranchKind::Return),
        Just(BranchKind::Indirect),
    ]
}

fn arb_record() -> impl Strategy<Value = BranchRecord> {
    (
        any::<u64>(),
        arb_kind(),
        any::<bool>(),
        proptest::option::of(any::<u64>()),
    )
        .prop_map(|(addr, kind, taken, target)| {
            let mut r = BranchRecord::new(BranchAddr::new(addr), kind, Outcome::from_bool(taken));
            if let Some(t) = target {
                r = r.with_target(BranchAddr::new(t));
            }
            r
        })
}

fn arb_trace() -> impl Strategy<Value = Trace> {
    (
        proptest::collection::vec(arb_record(), 0..200),
        any::<u64>(),
    )
        .prop_map(|(records, seed)| {
            let meta = TraceMetadata::named("fuzz")
                .with_input_set("fast")
                .with_seed(seed);
            Trace::from_records(meta, records)
        })
}

// ---------------------------------------------------------------------------
// Clean-stream equivalence.
// ---------------------------------------------------------------------------

#[test]
fn fast_matches_slow_on_the_adversarial_trace_at_every_chunk_size() {
    let buf = encode(&adversarial_trace(517));
    for chunk_records in CHUNK_SIZES {
        let slow = drain_slow(&buf, chunk_records);
        let fast = drain_fast(buf.as_slice(), chunk_records);
        assert_eq!(fast, slow, "chunk size {chunk_records} diverged");
    }
}

#[test]
fn socket_shaped_fast_reads_are_bit_identical() {
    let buf = encode(&adversarial_trace(257));
    let oneshot = drain_fast(buf.as_slice(), 16);
    for max in [1usize, 2, 3, 5, 21] {
        let trickled = drain_fast(TrickleReader { data: &buf, max }, 16);
        assert_eq!(trickled, oneshot, "max {max} bytes per read diverged");
        let interrupted = drain_fast(InterruptingReader::new(&buf, max), 16);
        assert_eq!(interrupted, oneshot, "interrupted max {max} diverged");
    }
    assert_eq!(oneshot, drain_slow(&buf, 16), "fast diverged from slow");
}

#[test]
fn interrupted_truncated_streams_still_surface_the_typed_error() {
    let mut buf = encode(&adversarial_trace(64));
    buf.truncate(buf.len() - 1);
    let mut reader =
        FastBtrtReader::new(InterruptingReader::new(&buf, 1), 16).expect("header decodes");
    let err = (&mut reader)
        .filter_map(|c| c.err())
        .next()
        .expect("truncation must surface");
    assert!(
        matches!(err, btr_trace::TraceError::TruncatedRecord { .. }),
        "{err:?}"
    );
}

// ---------------------------------------------------------------------------
// Error equivalence: truncation at EVERY byte boundary — which covers every
// field boundary of every record (flags, delta varint bytes, target varint
// bytes) and every header field — must produce the same error as the slow
// path: same variant, same record index, same byte offset.
// ---------------------------------------------------------------------------

#[test]
fn every_truncation_prefix_agrees_on_error_type_and_offset() {
    let buf = encode(&adversarial_trace(48));
    for cut in 0..buf.len() {
        let prefix = &buf[..cut];
        for chunk_records in [1usize, 7] {
            let slow = outcome_slow(prefix, chunk_records);
            let fast = outcome_fast(prefix, chunk_records);
            assert_eq!(
                fast, slow,
                "truncation at byte {cut} (chunk size {chunk_records}) diverged"
            );
        }
    }
}

#[test]
fn corrupted_flag_bytes_agree_on_unknown_kind_errors() {
    // Force the reserved kind codes (5, 6, 7) into the first record's flag
    // byte: both decoders must reject with the same `UnknownKind` error and
    // the same already-decoded record count.
    let trace = adversarial_trace(16);
    let clean = encode(&trace);
    // The header layout is independent of the record count's value, so the
    // empty-trace encoding length is exactly where the first flag byte sits.
    let header_len = encode(&Trace::from_records(trace.metadata().clone(), Vec::new())).len();
    for bad_kind in [5u8, 6, 7] {
        let mut corrupt = clean.clone();
        corrupt[header_len] = bad_kind;
        let slow = outcome_slow(&corrupt, 4);
        let fast = outcome_fast(&corrupt, 4);
        assert_eq!(fast, slow, "kind code {bad_kind} diverged");
        let (_, err) = fast;
        assert!(
            err.expect("reserved kind must error")
                .contains("UnknownKind"),
            "reserved kind code {bad_kind} must surface as UnknownKind"
        );
    }
}

// ---------------------------------------------------------------------------
// Property coverage: arbitrary traces, chunkings, corruptions.
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn fast_and_slow_agree_on_arbitrary_traces(trace in arb_trace()) {
        let buf = encode(&trace);
        let eager = trace.intern();
        for chunk_records in CHUNK_SIZES {
            let slow = drain_slow(&buf, chunk_records);
            let fast = drain_fast(buf.as_slice(), chunk_records);
            prop_assert_eq!(&fast, &slow, "chunk size {}", chunk_records);
            prop_assert_eq!(fast.0.as_slice(), trace.records());
            prop_assert_eq!(fast.1.as_slice(), eager.records());
            prop_assert_eq!(fast.2.as_slice(), eager.addrs());
        }
    }

    #[test]
    fn fast_and_slow_agree_under_socket_shaped_delivery(
        trace in arb_trace(),
        max in 1usize..4,
        chunk_records in 1usize..50,
    ) {
        let buf = encode(&trace);
        let slow = drain_slow(&buf, chunk_records);
        let trickled = drain_fast(TrickleReader { data: &buf, max }, chunk_records);
        prop_assert_eq!(&trickled, &slow);
        let interrupted = drain_fast(InterruptingReader::new(&buf, max), chunk_records);
        prop_assert_eq!(&interrupted, &slow);
    }

    #[test]
    fn fast_and_slow_agree_on_arbitrary_truncation(
        trace in arb_trace(),
        cut_seed in any::<usize>(),
        chunk_records in 1usize..50,
    ) {
        let buf = encode(&trace);
        let cut = cut_seed % (buf.len() + 1);
        let prefix = &buf[..cut];
        let slow = outcome_slow(prefix, chunk_records);
        let fast = outcome_fast(prefix, chunk_records);
        prop_assert_eq!(fast, slow, "truncation at byte {} diverged", cut);
    }

    #[test]
    fn fast_and_slow_agree_on_arbitrary_corruption(
        trace in arb_trace(),
        position_seed in any::<usize>(),
        byte in any::<u8>(),
        chunk_records in 1usize..50,
    ) {
        let mut buf = encode(&trace);
        let position = position_seed % buf.len();
        buf[position] = byte;
        let slow = outcome_slow(&buf, chunk_records);
        let fast = outcome_fast(&buf, chunk_records);
        prop_assert_eq!(fast, slow, "corruption at byte {} diverged", position);
    }
}
