//! Property-based tests for address interning and the cached conditional
//! subset: `intern()` must round-trip addresses and preserve record order for
//! any record mix.

use btr_trace::{BranchAddr, BranchKind, BranchRecord, Outcome, Trace, TraceMetadata};
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = BranchKind> {
    prop_oneof![
        Just(BranchKind::Conditional),
        Just(BranchKind::Unconditional),
        Just(BranchKind::Call),
        Just(BranchKind::Return),
        Just(BranchKind::Indirect),
    ]
}

fn arb_record() -> impl Strategy<Value = BranchRecord> {
    // A narrow address range forces heavy id reuse; a wide one exercises
    // fresh-id assignment. Mix both.
    let addr = prop_oneof![0u64..0x100u64, 0u64..0x1_0000_0000u64];
    (addr, arb_kind(), any::<bool>()).prop_map(|(addr, kind, taken)| {
        BranchRecord::new(BranchAddr::new(addr), kind, Outcome::from_bool(taken))
    })
}

fn arb_trace() -> impl Strategy<Value = Trace> {
    proptest::collection::vec(arb_record(), 0..300)
        .prop_map(|records| Trace::from_records(TraceMetadata::named("intern-prop"), records))
}

proptest! {
    #[test]
    fn conditional_cache_equals_filtered_records(trace in arb_trace()) {
        let filtered: Vec<BranchRecord> = trace
            .records()
            .iter()
            .copied()
            .filter(|r| r.kind().is_conditional())
            .collect();
        prop_assert_eq!(trace.conditional_records(), filtered.as_slice());
        prop_assert_eq!(trace.conditional_records().len() as u64, trace.conditional_count());
    }

    #[test]
    fn intern_round_trips_addresses_and_preserves_order(trace in arb_trace()) {
        let interned = trace.intern();
        let conditional = trace.conditional_records();
        prop_assert_eq!(interned.len(), conditional.len());
        for (original, record) in conditional.iter().zip(interned.records()) {
            // Same stream, in order, with ids resolving back to the address.
            prop_assert_eq!(record.addr(), original.addr());
            prop_assert_eq!(record.outcome(), original.outcome());
            prop_assert_eq!(interned.addr_of(record.id()), original.addr());
        }
    }

    #[test]
    fn intern_ids_are_dense_and_first_appearance_ordered(trace in arb_trace()) {
        let interned = trace.intern();
        prop_assert_eq!(interned.static_count(), trace.static_conditional_count());
        prop_assert_eq!(interned.addrs().len(), interned.static_count());
        // The addr table has no duplicates.
        let mut seen = std::collections::BTreeSet::new();
        for addr in interned.addrs() {
            prop_assert!(seen.insert(addr.raw()));
        }
        // Ids appear in nondecreasing first-appearance order: a record's id is
        // at most the number of distinct addresses seen strictly before it.
        let mut distinct = 0u32;
        let mut first_seen = std::collections::BTreeSet::new();
        for record in interned.records() {
            if first_seen.insert(record.addr().raw()) {
                prop_assert_eq!(record.id(), distinct);
                distinct += 1;
            } else {
                prop_assert!(record.id() < distinct);
            }
        }
        prop_assert_eq!(distinct as usize, interned.static_count());
    }
}
