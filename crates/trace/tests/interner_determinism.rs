//! Regression proof that [`IncrementalInterner`]'s internal `HashMap` cannot
//! leak hash-order nondeterminism into results.
//!
//! The interner is the one `HashMap` in first-party library code (registered
//! in `analyzer-ratchet.toml` under `[determinism]`). Its defence is
//! structural: the map is used for *lookup only* — ids come from
//! `addrs.len()` at first appearance, and every output (`addrs()`,
//! `static_count()`, the ids on interned records) derives from the
//! insertion-ordered `Vec`, never from map iteration. These tests pin that
//! property against a reference interner containing no hash map at all, so
//! any future change that starts iterating the map (or keying ids off it)
//! diverges from the reference on some input.

use btr_trace::{BranchAddr, IncrementalInterner};

/// The specification interner: an O(n²) linear scan over an append-only
/// `Vec`. No hashing anywhere, so its output is *definitionally* independent
/// of hash order: the id of an address is the index of its first appearance.
#[derive(Default)]
struct ReferenceInterner {
    addrs: Vec<BranchAddr>,
}

impl ReferenceInterner {
    fn intern(&mut self, addr: BranchAddr) -> u32 {
        if let Some(pos) = self.addrs.iter().position(|a| *a == addr) {
            return u32::try_from(pos).expect("reference table fits in u32");
        }
        self.addrs.push(addr);
        u32::try_from(self.addrs.len() - 1).expect("reference table fits in u32")
    }
}

/// Tiny deterministic xorshift so sequences are reproducible across runs and
/// platforms without depending on any RNG crate.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// Runs one address sequence through both interners and asserts identical
/// ids and identical id → address tables.
fn assert_matches_reference(addrs: &[BranchAddr]) {
    let mut real = IncrementalInterner::new();
    let mut reference = ReferenceInterner::default();
    for &addr in addrs {
        assert_eq!(
            real.intern(addr),
            reference.intern(addr),
            "id mismatch at address {addr:?}"
        );
    }
    assert_eq!(real.static_count(), reference.addrs.len());
    assert_eq!(real.addrs(), reference.addrs.as_slice());
    assert_eq!(real.into_addrs(), reference.addrs);
}

#[test]
fn matches_mapless_reference_on_adversarial_sequences() {
    // Hand-picked shapes: heavy duplication, monotone, reversed, and
    // addresses engineered to collide in low bits (the default hasher's
    // bucket choice must not matter).
    let dup_heavy: Vec<BranchAddr> = (0..200u64).map(|i| BranchAddr::new(i % 5)).collect();
    let monotone: Vec<BranchAddr> = (0..100u64).map(|i| BranchAddr::new(i * 4)).collect();
    let reversed: Vec<BranchAddr> = (0..100u64).rev().map(|i| BranchAddr::new(i * 4)).collect();
    let low_bit_colliders: Vec<BranchAddr> = (0..64u64).map(|i| BranchAddr::new(i << 32)).collect();
    for seq in [dup_heavy, monotone, reversed, low_bit_colliders] {
        assert_matches_reference(&seq);
    }
}

#[test]
fn matches_mapless_reference_on_random_duplicate_shuffles() {
    // Many random sequences over a small address pool: every permutation of
    // duplicates must produce ids in first-appearance order, exactly as the
    // linear-scan reference does.
    for seed in 1..=64u64 {
        let mut rng = XorShift(seed);
        let pool: Vec<BranchAddr> = (0..17u64).map(|_| BranchAddr::new(rng.next())).collect();
        let seq: Vec<BranchAddr> = (0..500)
            .map(|_| pool[(rng.next() % pool.len() as u64) as usize])
            .collect();
        assert_matches_reference(&seq);
    }
}

#[test]
fn batch_splits_never_change_ids() {
    // The incremental contract: interning a sequence in arbitrary batch
    // splits yields the same ids as one shot — ids depend only on the
    // record sequence, not on chunking (or on anything the map remembers
    // across batches).
    let mut rng = XorShift(0x9E3779B97F4A7C15);
    let seq: Vec<BranchAddr> = (0..600).map(|_| BranchAddr::new(rng.next() % 41)).collect();
    let mut one_shot = IncrementalInterner::new();
    let expected: Vec<u32> = seq.iter().map(|&a| one_shot.intern(a)).collect();
    for split_seed in 1..=16u64 {
        let mut split_rng = XorShift(split_seed);
        let mut chunked = IncrementalInterner::new();
        let mut ids = Vec::with_capacity(seq.len());
        let mut rest = seq.as_slice();
        while !rest.is_empty() {
            let take = ((split_rng.next() % 97) as usize + 1).min(rest.len());
            let (batch, tail) = rest.split_at(take);
            ids.extend(batch.iter().map(|&a| chunked.intern(a)));
            rest = tail;
        }
        assert_eq!(ids, expected, "split seed {split_seed} changed ids");
        assert_eq!(chunked.addrs(), one_shot.addrs());
    }
}
