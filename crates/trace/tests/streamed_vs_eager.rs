//! Equivalence suite pinning the chunked reader to the eager readers: over
//! arbitrary traces and chunk sizes — degenerate (1), prime (7), typical
//! (4096) and larger-than-the-trace — the concatenated chunks must be
//! bit-identical to `read_binary` / `read_text`, and the incrementally
//! interned ids must match `Trace::intern` exactly.

use btr_trace::io::{binary, text};
use btr_trace::{
    BranchAddr, BranchKind, BranchRecord, ChunkedTraceReader, FastBtrtReader, InternedRecord,
    Outcome, Trace, TraceMetadata,
};
use proptest::prelude::*;

/// The chunk sizes every property is checked under.
const CHUNK_SIZES: [usize; 4] = [1, 7, 4096, 100_000];

fn arb_kind() -> impl Strategy<Value = BranchKind> {
    prop_oneof![
        Just(BranchKind::Conditional),
        Just(BranchKind::Conditional),
        Just(BranchKind::Conditional),
        Just(BranchKind::Unconditional),
        Just(BranchKind::Call),
        Just(BranchKind::Return),
        Just(BranchKind::Indirect),
    ]
}

fn arb_record() -> impl Strategy<Value = BranchRecord> {
    (
        0u64..0x1_0000_0000u64,
        arb_kind(),
        any::<bool>(),
        proptest::option::of(0u64..0x1_0000_0000u64),
    )
        .prop_map(|(addr, kind, taken, target)| {
            let mut r = BranchRecord::new(BranchAddr::new(addr), kind, Outcome::from_bool(taken));
            if let Some(t) = target {
                r = r.with_target(BranchAddr::new(t));
            }
            r
        })
}

fn arb_trace() -> impl Strategy<Value = Trace> {
    (
        proptest::collection::vec(arb_record(), 0..300),
        any::<u64>(),
    )
        .prop_map(|(records, seed)| {
            let meta = TraceMetadata::named("stream")
                .with_input_set("fuzz")
                .with_seed(seed);
            Trace::from_records(meta, records)
        })
}

/// Drains a chunked reader, returning (records, interned conditionals, addrs).
fn drain<I: Iterator<Item = btr_trace::Result<BranchRecord>>>(
    mut reader: ChunkedTraceReader<I>,
) -> (Vec<BranchRecord>, Vec<InternedRecord>, Vec<BranchAddr>) {
    let mut records = Vec::new();
    let mut conditional = Vec::new();
    for (expected_index, chunk) in (&mut reader).enumerate() {
        let chunk = chunk.expect("well-formed stream must decode");
        assert_eq!(chunk.index(), expected_index);
        assert_eq!(chunk.first_record(), records.len() as u64);
        assert!(!chunk.is_empty(), "readers never yield empty chunks");
        conditional.extend(chunk.conditional());
        records.extend(chunk.into_records());
    }
    let addrs = reader.addrs().to_vec();
    (records, conditional, addrs)
}

// ---------------------------------------------------------------------------
// Adversarial socket-shaped readers: network sources hand the decoder bytes
// in whatever fragments the kernel felt like, and signals surface as
// `ErrorKind::Interrupted` mid-stream. None of that may change the decoded
// chunks by a single bit.
// ---------------------------------------------------------------------------

use std::io::Read;

/// Yields at most `max` bytes per `read` call — the 1-byte case is the
/// worst fragmentation a TCP stream can legally produce.
struct TrickleReader<'a> {
    data: &'a [u8],
    max: usize,
}

impl Read for TrickleReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.data.len().min(buf.len()).min(self.max);
        buf[..n].copy_from_slice(&self.data[..n]);
        self.data = &self.data[n..];
        Ok(n)
    }
}

/// Never lets a `read` cross one of the configured split offsets, so a
/// boundary sitting exactly between header and body (or between records)
/// forces a short read right there.
struct BoundarySplitReader<'a> {
    data: &'a [u8],
    pos: usize,
    splits: Vec<usize>,
}

impl Read for BoundarySplitReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let remaining = self.data.len() - self.pos;
        let mut n = remaining.min(buf.len());
        for &split in &self.splits {
            if split > self.pos {
                n = n.min(split - self.pos);
                break;
            }
        }
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// Returns `ErrorKind::Interrupted` before every successful read and then
/// yields at most `max` bytes — a signal-storm socket.
struct InterruptingReader<'a> {
    inner: TrickleReader<'a>,
    ready: bool,
}

impl<'a> InterruptingReader<'a> {
    fn new(data: &'a [u8], max: usize) -> Self {
        InterruptingReader {
            inner: TrickleReader { data, max },
            ready: false,
        }
    }
}

impl Read for InterruptingReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if !self.ready {
            self.ready = true;
            return Err(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                "signal",
            ));
        }
        self.ready = false;
        self.inner.read(buf)
    }
}

/// The record/interning state a drain produced, for whole-sale comparison.
type Drained = (Vec<BranchRecord>, Vec<InternedRecord>, Vec<BranchAddr>);

fn drain_btrt<R: Read>(reader: R, chunk_records: usize) -> Drained {
    drain(ChunkedTraceReader::btrt(reader, chunk_records).expect("header must decode"))
}

/// Drains the slice fast path the same way, so every property below can pin
/// it against the generic-`Read` reference in passing.
fn drain_fast<R: Read>(reader: R, chunk_records: usize) -> Drained {
    let mut reader = FastBtrtReader::new(reader, chunk_records).expect("header must decode");
    let mut records = Vec::new();
    let mut conditional = Vec::new();
    for chunk in &mut reader {
        let chunk = chunk.expect("well-formed stream must decode");
        conditional.extend(chunk.conditional());
        records.extend(chunk.into_records());
    }
    let addrs = reader.addrs().to_vec();
    (records, conditional, addrs)
}

/// A characteristic trace for the deterministic adversarial tests: mixes
/// kinds, targets (two varints per record) and repeated addresses.
fn adversarial_trace() -> Trace {
    let mut records = Vec::new();
    for i in 0..257u64 {
        let addr = BranchAddr::new(0x40_0000 + (i % 11) * 4);
        let mut r = BranchRecord::new(
            addr,
            if i % 5 == 4 {
                BranchKind::Call
            } else {
                BranchKind::Conditional
            },
            Outcome::from_bool(i % 3 != 0),
        );
        if i % 7 == 6 {
            r = r.with_target(BranchAddr::new(0x8000_0000 + i * 16));
        }
        records.push(r);
    }
    Trace::from_records(
        TraceMetadata::named("adversarial")
            .with_input_set("socket")
            .with_seed(0xFEED),
        records,
    )
}

#[test]
fn one_byte_reads_yield_bit_identical_chunks() {
    let trace = adversarial_trace();
    let mut buf = Vec::new();
    binary::write_trace(&mut buf, &trace).unwrap();
    let oneshot = drain_btrt(buf.as_slice(), 16);
    for max in [1usize, 2, 3, 5] {
        let trickled = drain_btrt(TrickleReader { data: &buf, max }, 16);
        assert_eq!(trickled, oneshot, "max {max} bytes per read diverged");
    }
}

#[test]
fn reads_split_at_header_and_record_boundaries_are_bit_identical() {
    let trace = adversarial_trace();
    let mut buf = Vec::new();
    binary::write_trace(&mut buf, &trace).unwrap();
    let oneshot = drain_btrt(buf.as_slice(), 16);
    // Recover the exact header and per-record byte boundaries from a clean
    // decode pass.
    let mut boundary_probe =
        btr_trace::io::binary::BinaryRecordReader::new(buf.as_slice()).unwrap();
    let mut splits = vec![boundary_probe.byte_offset() as usize];
    while let Some(record) = boundary_probe.next() {
        record.unwrap();
        splits.push(boundary_probe.byte_offset() as usize);
    }
    // Every read stops at the next header/record boundary…
    let split_all = drain_btrt(
        BoundarySplitReader {
            data: &buf,
            pos: 0,
            splits: splits.clone(),
        },
        16,
    );
    assert_eq!(split_all, oneshot, "record-boundary splits diverged");
    // …and a sparser variant splits at the header plus every 3rd record.
    let sparse: Vec<usize> = splits.iter().copied().step_by(3).collect();
    let split_sparse = drain_btrt(
        BoundarySplitReader {
            data: &buf,
            pos: 0,
            splits: sparse,
        },
        16,
    );
    assert_eq!(split_sparse, oneshot, "sparse boundary splits diverged");
}

#[test]
fn interrupted_mid_stream_reads_are_bit_identical() {
    let trace = adversarial_trace();
    let mut buf = Vec::new();
    binary::write_trace(&mut buf, &trace).unwrap();
    let oneshot = drain_btrt(buf.as_slice(), 16);
    for max in [1usize, 2, 7] {
        let interrupted = drain_btrt(InterruptingReader::new(&buf, max), 16);
        assert_eq!(interrupted, oneshot, "interrupted max {max} diverged");
    }
    // The text decode path tolerates interrupts identically.
    let mut text_buf = Vec::new();
    text::write_trace(&mut text_buf, &trace).unwrap();
    let eager_text = drain(ChunkedTraceReader::text(text_buf.as_slice(), 16));
    let interrupted_text = drain(ChunkedTraceReader::text(
        InterruptingReader::new(&text_buf, 1),
        16,
    ));
    assert_eq!(interrupted_text, eager_text, "interrupted text diverged");
}

#[test]
fn truncated_interrupted_streams_still_surface_the_typed_error() {
    // Adversarial delivery must not mask genuine truncation: cutting the
    // last byte still ends in `TruncatedRecord`, never a bare IO error.
    let trace = adversarial_trace();
    let mut buf = Vec::new();
    binary::write_trace(&mut buf, &trace).unwrap();
    buf.truncate(buf.len() - 1);
    let mut reader =
        ChunkedTraceReader::btrt(InterruptingReader::new(&buf, 1), 16).expect("header decodes");
    let err = (&mut reader)
        .filter_map(|c| c.err())
        .next()
        .expect("truncation must surface");
    assert!(
        matches!(err, btr_trace::TraceError::TruncatedRecord { .. }),
        "{err:?}"
    );
}

proptest! {
    #[test]
    fn socket_shaped_btrt_reads_are_bit_identical(
        trace in arb_trace(),
        max in 1usize..4,
    ) {
        let mut buf = Vec::new();
        binary::write_trace(&mut buf, &trace).unwrap();
        let oneshot = drain_btrt(buf.as_slice(), 7);
        let trickled = drain_btrt(TrickleReader { data: &buf, max }, 7);
        prop_assert_eq!(&trickled, &oneshot);
        let interrupted = drain_btrt(InterruptingReader::new(&buf, max), 7);
        prop_assert_eq!(&interrupted, &oneshot);
        let fast_trickled = drain_fast(TrickleReader { data: &buf, max }, 7);
        prop_assert_eq!(&fast_trickled, &oneshot);
        let fast_interrupted = drain_fast(InterruptingReader::new(&buf, max), 7);
        prop_assert_eq!(&fast_interrupted, &oneshot);
    }
}

proptest! {
    #[test]
    fn chunked_btrt_is_bit_identical_to_read_binary(trace in arb_trace()) {
        let mut buf = Vec::new();
        binary::write_trace(&mut buf, &trace).unwrap();
        let eager = binary::read_trace(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(eager.records(), trace.records());
        for chunk_records in CHUNK_SIZES {
            let reader = ChunkedTraceReader::btrt(buf.as_slice(), chunk_records).unwrap();
            prop_assert_eq!(reader.metadata(), eager.metadata());
            prop_assert_eq!(reader.declared_count(), Some(trace.len() as u64));
            let (records, _, _) = drain(reader);
            prop_assert_eq!(records.as_slice(), eager.records(), "chunk size {}", chunk_records);
            let (fast_records, _, _) = drain_fast(buf.as_slice(), chunk_records);
            prop_assert_eq!(fast_records.as_slice(), eager.records(), "fast, chunk size {}", chunk_records);
        }
    }

    #[test]
    fn chunked_interning_matches_eager_interning(trace in arb_trace()) {
        let mut buf = Vec::new();
        binary::write_trace(&mut buf, &trace).unwrap();
        let eager = trace.intern();
        for chunk_records in CHUNK_SIZES {
            let reader = ChunkedTraceReader::btrt(buf.as_slice(), chunk_records).unwrap();
            let (_, conditional, addrs) = drain(reader);
            prop_assert_eq!(conditional.as_slice(), eager.records(), "chunk size {}", chunk_records);
            prop_assert_eq!(addrs.as_slice(), eager.addrs(), "chunk size {}", chunk_records);
            let (_, fast_conditional, fast_addrs) = drain_fast(buf.as_slice(), chunk_records);
            prop_assert_eq!(fast_conditional.as_slice(), eager.records(), "fast, chunk size {}", chunk_records);
            prop_assert_eq!(fast_addrs.as_slice(), eager.addrs(), "fast, chunk size {}", chunk_records);
        }
    }

    #[test]
    fn chunked_text_is_bit_identical_to_read_text(trace in arb_trace()) {
        let mut buf = Vec::new();
        text::write_trace(&mut buf, &trace).unwrap();
        let eager = text::read_trace(&mut buf.as_slice()).unwrap();
        let eager_interned = eager.intern();
        for chunk_records in CHUNK_SIZES {
            let reader = ChunkedTraceReader::text(buf.as_slice(), chunk_records);
            prop_assert_eq!(reader.metadata(), eager.metadata());
            let (records, conditional, _) = drain(reader);
            prop_assert_eq!(records.as_slice(), eager.records(), "chunk size {}", chunk_records);
            prop_assert_eq!(conditional.as_slice(), eager_interned.records());
        }
    }

    #[test]
    fn chunk_boundaries_partition_exactly(
        trace in arb_trace(),
        chunk_records in 1usize..50,
    ) {
        let mut buf = Vec::new();
        binary::write_trace(&mut buf, &trace).unwrap();
        let reader = ChunkedTraceReader::btrt(buf.as_slice(), chunk_records).unwrap();
        let chunks: Vec<_> = reader.map(|c| c.unwrap()).collect();
        // Every chunk except the last is exactly full.
        for chunk in chunks.iter().rev().skip(1) {
            prop_assert_eq!(chunk.len(), chunk_records);
        }
        let total: usize = chunks.iter().map(|c| c.len()).sum();
        prop_assert_eq!(total, trace.len());
        if let Some(last) = chunks.last() {
            prop_assert!(last.len() <= chunk_records);
            prop_assert!(!last.is_empty());
        }
    }
}
