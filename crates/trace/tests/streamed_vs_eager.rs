//! Equivalence suite pinning the chunked reader to the eager readers: over
//! arbitrary traces and chunk sizes — degenerate (1), prime (7), typical
//! (4096) and larger-than-the-trace — the concatenated chunks must be
//! bit-identical to `read_binary` / `read_text`, and the incrementally
//! interned ids must match `Trace::intern` exactly.

use btr_trace::io::{binary, text};
use btr_trace::{
    BranchAddr, BranchKind, BranchRecord, ChunkedTraceReader, InternedRecord, Outcome, Trace,
    TraceMetadata,
};
use proptest::prelude::*;

/// The chunk sizes every property is checked under.
const CHUNK_SIZES: [usize; 4] = [1, 7, 4096, 100_000];

fn arb_kind() -> impl Strategy<Value = BranchKind> {
    prop_oneof![
        Just(BranchKind::Conditional),
        Just(BranchKind::Conditional),
        Just(BranchKind::Conditional),
        Just(BranchKind::Unconditional),
        Just(BranchKind::Call),
        Just(BranchKind::Return),
        Just(BranchKind::Indirect),
    ]
}

fn arb_record() -> impl Strategy<Value = BranchRecord> {
    (
        0u64..0x1_0000_0000u64,
        arb_kind(),
        any::<bool>(),
        proptest::option::of(0u64..0x1_0000_0000u64),
    )
        .prop_map(|(addr, kind, taken, target)| {
            let mut r = BranchRecord::new(BranchAddr::new(addr), kind, Outcome::from_bool(taken));
            if let Some(t) = target {
                r = r.with_target(BranchAddr::new(t));
            }
            r
        })
}

fn arb_trace() -> impl Strategy<Value = Trace> {
    (
        proptest::collection::vec(arb_record(), 0..300),
        any::<u64>(),
    )
        .prop_map(|(records, seed)| {
            let meta = TraceMetadata::named("stream")
                .with_input_set("fuzz")
                .with_seed(seed);
            Trace::from_records(meta, records)
        })
}

/// Drains a chunked reader, returning (records, interned conditionals, addrs).
fn drain<I: Iterator<Item = btr_trace::Result<BranchRecord>>>(
    mut reader: ChunkedTraceReader<I>,
) -> (Vec<BranchRecord>, Vec<InternedRecord>, Vec<BranchAddr>) {
    let mut records = Vec::new();
    let mut conditional = Vec::new();
    for (expected_index, chunk) in (&mut reader).enumerate() {
        let chunk = chunk.expect("well-formed stream must decode");
        assert_eq!(chunk.index(), expected_index);
        assert_eq!(chunk.first_record(), records.len() as u64);
        assert!(!chunk.is_empty(), "readers never yield empty chunks");
        conditional.extend_from_slice(chunk.conditional());
        records.extend(chunk.into_records());
    }
    let addrs = reader.addrs().to_vec();
    (records, conditional, addrs)
}

proptest! {
    #[test]
    fn chunked_btrt_is_bit_identical_to_read_binary(trace in arb_trace()) {
        let mut buf = Vec::new();
        binary::write_trace(&mut buf, &trace).unwrap();
        let eager = binary::read_trace(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(eager.records(), trace.records());
        for chunk_records in CHUNK_SIZES {
            let reader = ChunkedTraceReader::btrt(buf.as_slice(), chunk_records).unwrap();
            prop_assert_eq!(reader.metadata(), eager.metadata());
            prop_assert_eq!(reader.declared_count(), Some(trace.len() as u64));
            let (records, _, _) = drain(reader);
            prop_assert_eq!(records.as_slice(), eager.records(), "chunk size {}", chunk_records);
        }
    }

    #[test]
    fn chunked_interning_matches_eager_interning(trace in arb_trace()) {
        let mut buf = Vec::new();
        binary::write_trace(&mut buf, &trace).unwrap();
        let eager = trace.intern();
        for chunk_records in CHUNK_SIZES {
            let reader = ChunkedTraceReader::btrt(buf.as_slice(), chunk_records).unwrap();
            let (_, conditional, addrs) = drain(reader);
            prop_assert_eq!(conditional.as_slice(), eager.records(), "chunk size {}", chunk_records);
            prop_assert_eq!(addrs.as_slice(), eager.addrs(), "chunk size {}", chunk_records);
        }
    }

    #[test]
    fn chunked_text_is_bit_identical_to_read_text(trace in arb_trace()) {
        let mut buf = Vec::new();
        text::write_trace(&mut buf, &trace).unwrap();
        let eager = text::read_trace(&mut buf.as_slice()).unwrap();
        let eager_interned = eager.intern();
        for chunk_records in CHUNK_SIZES {
            let reader = ChunkedTraceReader::text(buf.as_slice(), chunk_records);
            prop_assert_eq!(reader.metadata(), eager.metadata());
            let (records, conditional, _) = drain(reader);
            prop_assert_eq!(records.as_slice(), eager.records(), "chunk size {}", chunk_records);
            prop_assert_eq!(conditional.as_slice(), eager_interned.records());
        }
    }

    #[test]
    fn chunk_boundaries_partition_exactly(
        trace in arb_trace(),
        chunk_records in 1usize..50,
    ) {
        let mut buf = Vec::new();
        binary::write_trace(&mut buf, &trace).unwrap();
        let reader = ChunkedTraceReader::btrt(buf.as_slice(), chunk_records).unwrap();
        let chunks: Vec<_> = reader.map(|c| c.unwrap()).collect();
        // Every chunk except the last is exactly full.
        for chunk in chunks.iter().rev().skip(1) {
            prop_assert_eq!(chunk.len(), chunk_records);
        }
        let total: usize = chunks.iter().map(|c| c.len()).sum();
        prop_assert_eq!(total, trace.len());
        if let Some(last) = chunks.last() {
            prop_assert!(last.len() <= chunk_records);
            prop_assert!(!last.is_empty());
        }
    }
}
