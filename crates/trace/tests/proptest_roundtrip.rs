//! Property-based tests for the trace substrate: serialization round-trips
//! and statistics invariants.

use btr_trace::io::{binary, text};
use btr_trace::{
    AddrStats, BranchAddr, BranchKind, BranchRecord, Outcome, Trace, TraceBuilder, TraceError,
    TraceMetadata,
};
use btr_wire::Wire;
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = BranchKind> {
    prop_oneof![
        Just(BranchKind::Conditional),
        Just(BranchKind::Unconditional),
        Just(BranchKind::Call),
        Just(BranchKind::Return),
        Just(BranchKind::Indirect),
    ]
}

fn arb_record() -> impl Strategy<Value = BranchRecord> {
    (
        0u64..0x1_0000_0000u64,
        arb_kind(),
        any::<bool>(),
        proptest::option::of(0u64..0x1_0000_0000u64),
    )
        .prop_map(|(addr, kind, taken, target)| {
            let mut r = BranchRecord::new(BranchAddr::new(addr), kind, Outcome::from_bool(taken));
            if let Some(t) = target {
                r = r.with_target(BranchAddr::new(t));
            }
            r
        })
}

fn arb_trace() -> impl Strategy<Value = Trace> {
    (
        proptest::collection::vec(arb_record(), 0..200),
        any::<u64>(),
    )
        .prop_map(|(records, seed)| {
            let meta = TraceMetadata::named("prop")
                .with_input_set("fuzz")
                .with_seed(seed);
            Trace::from_records(meta, records)
        })
}

proptest! {
    #[test]
    fn binary_roundtrip_is_identity(trace in arb_trace()) {
        let mut buf = Vec::new();
        binary::write_trace(&mut buf, &trace).unwrap();
        let back = binary::read_trace(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(back.records(), trace.records());
        prop_assert_eq!(&back.metadata().benchmark, &trace.metadata().benchmark);
        prop_assert_eq!(back.metadata().seed, trace.metadata().seed);
    }

    #[test]
    fn text_roundtrip_is_identity(trace in arb_trace()) {
        let mut buf = Vec::new();
        text::write_trace(&mut buf, &trace).unwrap();
        let back = text::read_trace(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(back.records(), trace.records());
    }

    #[test]
    fn stats_invariants_hold(outcomes in proptest::collection::vec(any::<bool>(), 0..500)) {
        let mut stats = AddrStats::new();
        for taken in &outcomes {
            stats.observe(Outcome::from_bool(*taken));
        }
        let n = outcomes.len() as u64;
        prop_assert_eq!(stats.executions(), n);
        prop_assert!(stats.taken() <= n);
        // A transition needs a predecessor, so there are at most n-1 of them.
        if n > 0 {
            prop_assert!(stats.transitions() < n);
            let tf = stats.taken_fraction().unwrap();
            let xf = stats.transition_fraction().unwrap();
            prop_assert!((0.0..=1.0).contains(&tf));
            prop_assert!((0.0..=1.0).contains(&xf));
        } else {
            prop_assert_eq!(stats.transitions(), 0);
        }
        // Recompute transitions independently.
        let expected_transitions = outcomes.windows(2).filter(|w| w[0] != w[1]).count() as u64;
        prop_assert_eq!(stats.transitions(), expected_transitions);
        let expected_taken = outcomes.iter().filter(|t| **t).count() as u64;
        prop_assert_eq!(stats.taken(), expected_taken);
    }

    #[test]
    fn trace_stats_totals_match_record_counts(trace in arb_trace()) {
        let stats = trace.stats();
        let conditional = trace
            .records()
            .iter()
            .filter(|r| r.kind().is_conditional())
            .count() as u64;
        prop_assert_eq!(stats.total_conditional(), conditional);
        prop_assert_eq!(
            stats.total_other(),
            trace.len() as u64 - conditional
        );
        let per_addr_sum: u64 = stats.iter().map(|(_, s)| s.executions()).sum();
        prop_assert_eq!(per_addr_sum, conditional);
    }

    #[test]
    fn metadata_wire_roundtrip_is_identity(
        seed in proptest::option::of(any::<u64>()),
        words in proptest::collection::vec(any::<u64>(), 3),
    ) {
        // Printable-ASCII names of varying lengths derived from the words.
        let text_of = |word: u64, label: &str| -> String {
            (0..(word % 12))
                .map(|i| char::from(b' ' + ((word >> (i % 8)) % 95) as u8))
                .chain(label.chars())
                .collect()
        };
        let meta = TraceMetadata {
            benchmark: text_of(words[0], "bench"),
            input_set: text_of(words[1], "input"),
            description: text_of(words[2], "desc"),
            seed,
        };
        let via_json = TraceMetadata::from_json(&meta.to_json().unwrap()).unwrap();
        prop_assert_eq!(&via_json, &meta);
        let via_btrw = TraceMetadata::from_btrw(&meta.to_btrw()).unwrap();
        prop_assert_eq!(&via_btrw, &meta);
    }

    #[test]
    fn error_wire_roundtrip_preserves_every_field(
        selector in 0u8..7,
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        let err = match selector {
            0 => TraceError::BadMagic {
                found: (a as u32).to_le_bytes(),
            },
            1 => TraceError::UnsupportedVersion { found: a as u32 },
            2 => TraceError::UnexpectedEof {
                context: format!("field-{b}"),
            },
            3 => TraceError::TruncatedRecord {
                record: a,
                offset: b,
                context: "address delta".into(),
            },
            4 => TraceError::MalformedLine {
                line: (a % 1_000_000) as usize,
                reason: format!("reason-{b}"),
            },
            5 => TraceError::UnknownKind {
                code: char::from(b' ' + (a % 95) as u8),
            },
            _ => TraceError::CountMismatch {
                declared: a,
                actual: b,
            },
        };
        // TraceError cannot derive PartialEq (its Io variant wraps a live
        // io::Error), so the non-Io variants compare via their Debug views,
        // which expose every field.
        let via_json = TraceError::from_json(&err.to_json().unwrap()).unwrap();
        prop_assert_eq!(format!("{via_json:?}"), format!("{err:?}"));
        let via_btrw = TraceError::from_btrw(&err.to_btrw()).unwrap();
        prop_assert_eq!(format!("{via_btrw:?}"), format!("{err:?}"));
    }

    #[test]
    fn builder_matches_from_records(records in proptest::collection::vec(arb_record(), 0..100)) {
        let mut builder = TraceBuilder::new("cmp");
        builder.extend(records.clone());
        let a = builder.build();
        let b = Trace::from_records(TraceMetadata::named("cmp"), records);
        prop_assert_eq!(a.stats(), b.stats());
    }
}
