//! Dense branch-address interning for the simulation hot path.
//!
//! A [`crate::Trace`] keys everything by 64-bit [`BranchAddr`]; per-branch
//! bookkeeping during simulation therefore needs an associative lookup
//! (historically a `BTreeMap`) on *every* dynamic branch. Paper-scale sweeps
//! run 10⁸+ dynamic branches × 17 history lengths × 2 families, so that
//! lookup dominates the whole experiment.
//!
//! [`InternedTrace`] removes it: one pass over the trace assigns every static
//! conditional branch a dense `u32` id (in first-appearance order) and lays
//! the conditional records out as a contiguous slice carrying the id inline.
//! Per-branch statistics then live in a plain `Vec` indexed directly by id,
//! and the id → address table converts back to the map-keyed form once per
//! run instead of once per record.

use crate::record::{BranchAddr, BranchRecord, Outcome};
use crate::trace::Trace;
use std::collections::HashMap;

/// One conditional branch execution with its address interned to a dense id.
///
/// The address is kept inline so predictors can index their tables without a
/// side lookup; the id is what per-branch statistics vectors index by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InternedRecord {
    addr: BranchAddr,
    id: u32,
    taken: bool,
}

impl InternedRecord {
    /// Builds an interned record. Crate-internal: ids are only meaningful
    /// relative to the interner that assigned them, so public construction
    /// goes through [`InternedTrace`] or the chunked reader.
    pub(crate) fn new(addr: BranchAddr, id: u32, taken: bool) -> Self {
        InternedRecord { addr, id, taken }
    }

    /// The static branch address.
    #[inline]
    pub fn addr(&self) -> BranchAddr {
        self.addr
    }

    /// The dense static-branch id (`0 ..` [`InternedTrace::static_count`]).
    #[inline]
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The resolved direction.
    #[inline]
    pub fn outcome(&self) -> Outcome {
        Outcome::from_bool(self.taken)
    }
}

/// Assigns dense `u32` ids to branch addresses in first-appearance order,
/// incrementally — the id table can keep growing across batches of records.
///
/// This is the policy behind [`InternedTrace`] (which interns a whole trace
/// in one pass) factored out so streaming consumers — the chunked trace
/// reader interning records chunk by chunk — assign *identical* ids to the
/// same record sequence no matter how it is split. Determinism here is what
/// lets a streamed simulation merge per-id statistics bit-identically with an
/// eager one.
///
/// ```
/// use btr_trace::{BranchAddr, IncrementalInterner};
/// let mut interner = IncrementalInterner::new();
/// assert_eq!(interner.intern(BranchAddr::new(0x40)), 0);
/// assert_eq!(interner.intern(BranchAddr::new(0x80)), 1);
/// assert_eq!(interner.intern(BranchAddr::new(0x40)), 0); // stable across calls
/// assert_eq!(interner.static_count(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct IncrementalInterner {
    ids: HashMap<u64, u32>,
    addrs: Vec<BranchAddr>,
}

impl IncrementalInterner {
    /// An empty interner.
    pub fn new() -> Self {
        IncrementalInterner::default()
    }

    /// Returns the dense id of `addr`, assigning the next free id on first
    /// appearance.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX` distinct addresses are interned.
    pub fn intern(&mut self, addr: BranchAddr) -> u32 {
        *self.ids.entry(addr.raw()).or_insert_with(|| {
            let id = u32::try_from(self.addrs.len())
                .expect("more than u32::MAX static branches in one trace");
            self.addrs.push(addr);
            id
        })
    }

    /// The number of distinct addresses interned so far.
    pub fn static_count(&self) -> usize {
        self.addrs.len()
    }

    /// The id → address table, in id (first-appearance) order.
    pub fn addrs(&self) -> &[BranchAddr] {
        &self.addrs
    }

    /// Consumes the interner, returning the id → address table.
    pub fn into_addrs(self) -> Vec<BranchAddr> {
        self.addrs
    }
}

/// The conditional-branch stream of a [`Trace`] with addresses interned to
/// dense `u32` ids.
///
/// Ids are assigned in first-appearance order, so interning is deterministic
/// for a given record sequence; [`InternedTrace::addrs`] maps each id back to
/// its address.
///
/// ```
/// use btr_trace::{BranchAddr, BranchRecord, Outcome, TraceBuilder};
/// let mut b = TraceBuilder::new("t");
/// b.push(BranchRecord::conditional(BranchAddr::new(0x40), Outcome::Taken));
/// b.push(BranchRecord::conditional(BranchAddr::new(0x80), Outcome::NotTaken));
/// b.push(BranchRecord::conditional(BranchAddr::new(0x40), Outcome::NotTaken));
/// let interned = b.build().intern();
/// assert_eq!(interned.static_count(), 2);
/// assert_eq!(interned.records()[2].id(), 0); // 0x40 was seen first
/// assert_eq!(interned.addr_of(1), BranchAddr::new(0x80));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InternedTrace {
    addrs: Vec<BranchAddr>,
    records: Vec<InternedRecord>,
}

impl InternedTrace {
    /// Interns the conditional records of a trace (see [`Trace::intern`]).
    pub fn from_trace(trace: &Trace) -> Self {
        Self::from_conditional_records(trace.conditional_records())
    }

    /// Assembles an interned trace from already-interned parts: `addrs` in id
    /// (first-appearance) order and records carrying ids into it. Used by the
    /// streaming readers, whose persistent interner assigns exactly the ids
    /// [`Trace::intern`] would.
    pub(crate) fn from_parts(addrs: Vec<BranchAddr>, records: Vec<InternedRecord>) -> Self {
        InternedTrace { addrs, records }
    }

    /// Interns a slice of records, all of which must be conditional.
    pub(crate) fn from_conditional_records(records: &[BranchRecord]) -> Self {
        let mut interner = IncrementalInterner::new();
        let interned = records
            .iter()
            .map(|r| {
                debug_assert!(r.kind().is_conditional());
                let addr = r.addr();
                InternedRecord::new(addr, interner.intern(addr), r.outcome().is_taken())
            })
            .collect();
        InternedTrace {
            addrs: interner.into_addrs(),
            records: interned,
        }
    }

    /// The number of distinct static conditional branches.
    pub fn static_count(&self) -> usize {
        self.addrs.len()
    }

    /// The number of dynamic conditional records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace holds no conditional records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The interned records as a contiguous slice, in original trace order.
    #[inline]
    pub fn records(&self) -> &[InternedRecord] {
        &self.records
    }

    /// The id → address table, in id (first-appearance) order.
    pub fn addrs(&self) -> &[BranchAddr] {
        &self.addrs
    }

    /// The address a dense id stands for.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn addr_of(&self, id: u32) -> BranchAddr {
        self.addrs[id as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::BranchKind;
    use crate::trace::TraceBuilder;

    fn rec(addr: u64, taken: bool) -> BranchRecord {
        BranchRecord::conditional(BranchAddr::new(addr), Outcome::from_bool(taken))
    }

    #[test]
    fn ids_follow_first_appearance_order() {
        let mut b = TraceBuilder::new("t");
        b.push(rec(0x30, true));
        b.push(rec(0x10, false));
        b.push(rec(0x30, false));
        b.push(rec(0x20, true));
        let interned = b.build().intern();
        assert_eq!(interned.static_count(), 3);
        assert_eq!(
            interned.addrs(),
            &[
                BranchAddr::new(0x30),
                BranchAddr::new(0x10),
                BranchAddr::new(0x20)
            ]
        );
        let ids: Vec<u32> = interned.records().iter().map(|r| r.id()).collect();
        assert_eq!(ids, vec![0, 1, 0, 2]);
    }

    #[test]
    fn records_preserve_order_addresses_and_outcomes() {
        let mut b = TraceBuilder::new("t");
        for i in 0..100u64 {
            b.push(rec(0x1000 + (i % 7) * 4, i % 3 == 0));
        }
        let trace = b.build();
        let interned = trace.intern();
        assert_eq!(interned.len(), 100);
        assert!(!interned.is_empty());
        for (original, interned_record) in
            trace.conditional_records().iter().zip(interned.records())
        {
            assert_eq!(interned_record.addr(), original.addr());
            assert_eq!(interned_record.outcome(), original.outcome());
            assert_eq!(interned.addr_of(interned_record.id()), original.addr());
        }
    }

    #[test]
    fn non_conditional_records_are_excluded() {
        let mut b = TraceBuilder::new("t");
        b.push(rec(0x10, true));
        b.push(BranchRecord::new(
            BranchAddr::new(0x14),
            BranchKind::Call,
            Outcome::Taken,
        ));
        b.push(rec(0x18, false));
        let interned = b.build().intern();
        assert_eq!(interned.len(), 2);
        assert_eq!(interned.static_count(), 2);
    }

    #[test]
    fn empty_trace_interns_to_empty() {
        let interned = TraceBuilder::new("empty").build().intern();
        assert!(interned.is_empty());
        assert_eq!(interned.len(), 0);
        assert_eq!(interned.static_count(), 0);
        assert!(interned.addrs().is_empty());
    }
}
