//! Wire representations for the trace types shared across process
//! boundaries: stream headers ([`TraceMetadata`]) and decode errors
//! ([`TraceError`]), so a trace-ingesting service can report failures in the
//! same machine-readable formats it reports results in.

use crate::error::TraceError;
use crate::trace::TraceMetadata;
use btr_wire::{MapBuilder, Value, Wire, WireError};

impl Wire for TraceMetadata {
    fn to_value(&self) -> Value {
        MapBuilder::new()
            .field("benchmark", self.benchmark.as_str())
            .field("input_set", self.input_set.as_str())
            .field("description", self.description.as_str())
            .field(
                "seed",
                match self.seed {
                    Some(seed) => Value::U64(seed),
                    None => Value::Null,
                },
            )
            .build()
    }

    fn from_value(value: &Value) -> Result<Self, WireError> {
        let seed = match value.get("seed")? {
            Value::Null => None,
            other => Some(other.as_u64()?),
        };
        Ok(TraceMetadata {
            benchmark: value.get("benchmark")?.as_str()?.to_string(),
            input_set: value.get("input_set")?.as_str()?.to_string(),
            description: value.get("description")?.as_str()?.to_string(),
            seed,
        })
    }
}

/// [`TraceError`] encodes as a map tagged by a `"kind"` field. Every variant
/// round-trips field-exactly except [`TraceError::Io`], which carries a live
/// [`std::io::Error`]: it encodes as its display message and decodes as an
/// [`std::io::ErrorKind::Other`] error wrapping that message.
impl Wire for TraceError {
    fn to_value(&self) -> Value {
        let b = MapBuilder::new();
        match self {
            TraceError::Io(e) => b.field("kind", "io").field("message", e.to_string()),
            TraceError::BadMagic { found } => b.field("kind", "bad_magic").field(
                "found",
                found.iter().map(|b| u64::from(*b)).collect::<Vec<u64>>(),
            ),
            TraceError::UnsupportedVersion { found } => b
                .field("kind", "unsupported_version")
                .field("found", u64::from(*found)),
            TraceError::UnexpectedEof { context } => b
                .field("kind", "unexpected_eof")
                .field("context", context.as_str()),
            TraceError::TruncatedRecord {
                record,
                offset,
                context,
            } => b
                .field("kind", "truncated_record")
                .field("record", *record)
                .field("offset", *offset)
                .field("context", context.as_str()),
            TraceError::MalformedLine { line, reason } => b
                .field("kind", "malformed_line")
                .field("line", *line)
                .field("reason", reason.as_str()),
            TraceError::UnknownKind { code } => b
                .field("kind", "unknown_kind")
                .field("code", code.to_string()),
            TraceError::CountMismatch { declared, actual } => b
                .field("kind", "count_mismatch")
                .field("declared", *declared)
                .field("actual", *actual),
        }
        .build()
    }

    fn from_value(value: &Value) -> Result<Self, WireError> {
        Ok(match value.get("kind")?.as_str()? {
            "io" => TraceError::Io(std::io::Error::other(
                value.get("message")?.as_str()?.to_string(),
            )),
            "bad_magic" => {
                let bytes = value.get("found")?.as_u64_seq()?;
                let found: [u8; 4] = bytes
                    .iter()
                    .map(|b| u8::try_from(*b))
                    .collect::<Result<Vec<u8>, _>>()
                    .ok()
                    .and_then(|v| v.try_into().ok())
                    .ok_or_else(|| WireError::schema("bad_magic wants exactly 4 bytes"))?;
                TraceError::BadMagic { found }
            }
            "unsupported_version" => TraceError::UnsupportedVersion {
                found: u32::try_from(value.get("found")?.as_u64()?)
                    .map_err(|_| WireError::schema("version exceeds u32"))?,
            },
            "unexpected_eof" => TraceError::UnexpectedEof {
                context: value.get("context")?.as_str()?.to_string(),
            },
            "truncated_record" => TraceError::TruncatedRecord {
                record: value.get("record")?.as_u64()?,
                offset: value.get("offset")?.as_u64()?,
                context: value.get("context")?.as_str()?.to_string(),
            },
            "malformed_line" => TraceError::MalformedLine {
                line: value.get("line")?.as_u64()? as usize,
                reason: value.get("reason")?.as_str()?.to_string(),
            },
            "unknown_kind" => {
                let code = value.get("code")?.as_str()?;
                let mut chars = code.chars();
                match (chars.next(), chars.next()) {
                    (Some(c), None) => TraceError::UnknownKind { code: c },
                    _ => {
                        return Err(WireError::schema(format!(
                            "unknown_kind code must be one character, got {code:?}"
                        )))
                    }
                }
            }
            "count_mismatch" => TraceError::CountMismatch {
                declared: value.get("declared")?.as_u64()?,
                actual: value.get("actual")?.as_u64()?,
            },
            other => {
                return Err(WireError::schema(format!(
                    "unknown trace error kind {other:?}"
                )))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metadata_roundtrips_with_and_without_seed() {
        for seed in [None, Some(42u64), Some(u64::MAX)] {
            let meta = TraceMetadata {
                benchmark: "gcc".into(),
                input_set: "cccp.i".into(),
                description: "regression\nnotes".into(),
                seed,
            };
            assert_eq!(
                TraceMetadata::from_json(&meta.to_json().unwrap()).unwrap(),
                meta
            );
            assert_eq!(TraceMetadata::from_btrw(&meta.to_btrw()).unwrap(), meta);
        }
    }

    #[test]
    fn every_error_variant_roundtrips_through_both_codecs() {
        let errors = vec![
            TraceError::Io(std::io::Error::other("disk on fire")),
            TraceError::BadMagic { found: *b"NOPE" },
            TraceError::UnsupportedVersion { found: 9 },
            TraceError::UnexpectedEof {
                context: "record count".into(),
            },
            TraceError::TruncatedRecord {
                record: 17,
                offset: 0xdead_beef,
                context: "address delta".into(),
            },
            TraceError::MalformedLine {
                line: 3,
                reason: "what is a florp".into(),
            },
            TraceError::UnknownKind { code: 'z' },
            TraceError::CountMismatch {
                declared: 10,
                actual: 7,
            },
        ];
        for err in errors {
            let via_json = TraceError::from_json(&err.to_json().unwrap()).unwrap();
            let via_btrw = TraceError::from_btrw(&err.to_btrw()).unwrap();
            // TraceError cannot derive PartialEq (io::Error), so compare the
            // Debug views, which cover every field.
            assert_eq!(format!("{via_json:?}"), format!("{err:?}"));
            assert_eq!(format!("{via_btrw:?}"), format!("{err:?}"));
        }
    }

    #[test]
    fn io_errors_keep_their_message_across_the_wire() {
        let err = TraceError::Io(std::io::Error::new(
            std::io::ErrorKind::PermissionDenied,
            "locked",
        ));
        let back = TraceError::from_json(&err.to_json().unwrap()).unwrap();
        // The kind is not preserved (documented), the message is.
        assert!(back.to_string().contains("locked"));
    }

    #[test]
    fn malformed_error_values_are_rejected() {
        let bad_kind = MapBuilder::new().field("kind", "florp").build();
        assert!(TraceError::from_value(&bad_kind).is_err());
        let bad_magic = MapBuilder::new()
            .field("kind", "bad_magic")
            .field("found", vec![1u64, 2])
            .build();
        assert!(TraceError::from_value(&bad_magic).is_err());
        let wide_byte = MapBuilder::new()
            .field("kind", "bad_magic")
            .field("found", vec![1u64, 2, 3, 999])
            .build();
        assert!(TraceError::from_value(&wide_byte).is_err());
        let long_code = MapBuilder::new()
            .field("kind", "unknown_kind")
            .field("code", "zz")
            .build();
        assert!(TraceError::from_value(&long_code).is_err());
    }
}
