//! Primitive types describing a single dynamic branch execution.

use std::fmt;

/// The (virtual) address of a static branch instruction.
///
/// Addresses are opaque identifiers as far as the analysis is concerned; the
/// paper indexes predictor tables with the low-order bits of the address, so
/// the type exposes [`BranchAddr::low_bits`] for that purpose.
///
/// ```
/// use btr_trace::BranchAddr;
/// // 0x40 is a 4-byte aligned address; the alignment bits are dropped first.
/// let a = BranchAddr::new(0x40);
/// assert_eq!(a.low_bits(8), 0x10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BranchAddr(u64);

impl BranchAddr {
    /// Creates a branch address from a raw value.
    pub fn new(raw: u64) -> Self {
        BranchAddr(raw)
    }

    /// Returns the raw address value.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Returns the `n` low-order bits of the address (word-aligned view).
    ///
    /// Branch instructions on the simulated target are 4-byte aligned, so the
    /// two least-significant bits carry no information; they are shifted out
    /// before extracting bits, matching `sim-bpred`'s indexing convention.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    #[inline]
    pub fn low_bits(self, n: u32) -> u64 {
        assert!(n <= 64, "cannot take more than 64 low bits");
        let word = self.0 >> 2;
        if n == 64 {
            word
        } else if n == 0 {
            0
        } else {
            word & ((1u64 << n) - 1)
        }
    }
}

impl fmt::Display for BranchAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

impl From<u64> for BranchAddr {
    fn from(raw: u64) -> Self {
        BranchAddr::new(raw)
    }
}

/// The resolved direction of a branch execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// The branch was not taken (fell through).
    NotTaken,
    /// The branch was taken.
    Taken,
}

impl Outcome {
    /// Converts a boolean (`true` = taken) into an outcome.
    #[inline]
    pub fn from_bool(taken: bool) -> Self {
        if taken {
            Outcome::Taken
        } else {
            Outcome::NotTaken
        }
    }

    /// Returns `true` if the branch was taken.
    #[inline]
    pub fn is_taken(self) -> bool {
        matches!(self, Outcome::Taken)
    }

    /// Returns the opposite direction.
    #[must_use]
    pub fn flipped(self) -> Self {
        match self {
            Outcome::Taken => Outcome::NotTaken,
            Outcome::NotTaken => Outcome::Taken,
        }
    }

    /// Returns 1 for taken and 0 for not taken, convenient for history shifts.
    #[inline]
    pub fn as_bit(self) -> u64 {
        match self {
            Outcome::Taken => 1,
            Outcome::NotTaken => 0,
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Taken => write!(f, "T"),
            Outcome::NotTaken => write!(f, "N"),
        }
    }
}

impl From<bool> for Outcome {
    fn from(taken: bool) -> Self {
        Outcome::from_bool(taken)
    }
}

/// The kind of a control transfer appearing in a trace.
///
/// The paper analyses conditional branches only, but real traces also contain
/// unconditional jumps, calls and returns; keeping them in the data model lets
/// the filtering adapters reproduce the "only conditional branches were
/// measured" rule of the paper explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchKind {
    /// A conditional direct branch.
    Conditional,
    /// An unconditional direct jump.
    Unconditional,
    /// A function call.
    Call,
    /// A function return.
    Return,
    /// An indirect jump through a register or memory operand.
    Indirect,
}

impl BranchKind {
    /// Returns `true` for [`BranchKind::Conditional`].
    pub fn is_conditional(self) -> bool {
        matches!(self, BranchKind::Conditional)
    }

    /// All kinds, useful for exhaustive iteration in tests and tools.
    pub const ALL: [BranchKind; 5] = [
        BranchKind::Conditional,
        BranchKind::Unconditional,
        BranchKind::Call,
        BranchKind::Return,
        BranchKind::Indirect,
    ];

    /// A compact single-character mnemonic used by the text trace format.
    pub fn mnemonic(self) -> char {
        match self {
            BranchKind::Conditional => 'C',
            BranchKind::Unconditional => 'J',
            BranchKind::Call => 'L',
            BranchKind::Return => 'R',
            BranchKind::Indirect => 'I',
        }
    }

    /// Parses the mnemonic produced by [`BranchKind::mnemonic`].
    pub fn from_mnemonic(c: char) -> Option<Self> {
        Some(match c {
            'C' => BranchKind::Conditional,
            'J' => BranchKind::Unconditional,
            'L' => BranchKind::Call,
            'R' => BranchKind::Return,
            'I' => BranchKind::Indirect,
            _ => return None,
        })
    }
}

impl fmt::Display for BranchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            BranchKind::Conditional => "conditional",
            BranchKind::Unconditional => "unconditional",
            BranchKind::Call => "call",
            BranchKind::Return => "return",
            BranchKind::Indirect => "indirect",
        };
        write!(f, "{name}")
    }
}

/// One dynamic execution of a branch instruction.
///
/// ```
/// use btr_trace::{BranchAddr, BranchRecord, Outcome};
/// let r = BranchRecord::conditional(BranchAddr::new(0x400100), Outcome::Taken);
/// assert!(r.kind().is_conditional());
/// assert!(r.outcome().is_taken());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BranchRecord {
    addr: BranchAddr,
    kind: BranchKind,
    outcome: Outcome,
    target: Option<BranchAddr>,
}

impl BranchRecord {
    /// Creates a record with an explicit kind and no target information.
    pub fn new(addr: BranchAddr, kind: BranchKind, outcome: Outcome) -> Self {
        BranchRecord {
            addr,
            kind,
            outcome,
            target: None,
        }
    }

    /// Creates a conditional-branch record (the common case for this study).
    pub fn conditional(addr: BranchAddr, outcome: Outcome) -> Self {
        BranchRecord::new(addr, BranchKind::Conditional, outcome)
    }

    /// Attaches the branch target address, returning the modified record.
    #[must_use]
    pub fn with_target(mut self, target: BranchAddr) -> Self {
        self.target = Some(target);
        self
    }

    /// The static branch address.
    #[inline]
    pub fn addr(&self) -> BranchAddr {
        self.addr
    }

    /// The control-transfer kind.
    #[inline]
    pub fn kind(&self) -> BranchKind {
        self.kind
    }

    /// The resolved direction.
    #[inline]
    pub fn outcome(&self) -> Outcome {
        self.outcome
    }

    /// The branch target, if recorded.
    pub fn target(&self) -> Option<BranchAddr> {
        self.target
    }

    /// Returns `true` if this is a conditional branch that was taken.
    pub fn is_taken_conditional(&self) -> bool {
        self.kind.is_conditional() && self.outcome.is_taken()
    }

    /// Whether the branch target lies at a lower address than the branch
    /// itself (a "backward" branch), when a target is recorded.
    ///
    /// Backward/forward direction is what static BTFN (backward-taken,
    /// forward-not-taken) predictors key on.
    pub fn is_backward(&self) -> Option<bool> {
        self.target.map(|t| t.raw() < self.addr.raw())
    }
}

impl fmt::Display for BranchRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.kind.mnemonic(), self.addr, self.outcome)?;
        if let Some(t) = self.target {
            write!(f, " -> {t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_low_bits_strip_alignment() {
        let a = BranchAddr::new(0b10_11_00);
        // The two alignment bits are shifted out first.
        assert_eq!(a.low_bits(4), 0b1011);
        assert_eq!(a.low_bits(2), 0b11);
        assert_eq!(a.low_bits(0), 0);
    }

    #[test]
    fn addr_low_bits_full_width() {
        let a = BranchAddr::new(u64::MAX);
        assert_eq!(a.low_bits(64), u64::MAX >> 2);
    }

    #[test]
    #[should_panic(expected = "more than 64")]
    fn addr_low_bits_rejects_overwide_request() {
        BranchAddr::new(0).low_bits(65);
    }

    #[test]
    fn outcome_roundtrips_bool_and_bit() {
        assert!(Outcome::from_bool(true).is_taken());
        assert!(!Outcome::from_bool(false).is_taken());
        assert_eq!(Outcome::Taken.as_bit(), 1);
        assert_eq!(Outcome::NotTaken.as_bit(), 0);
        assert_eq!(Outcome::Taken.flipped(), Outcome::NotTaken);
        assert_eq!(Outcome::NotTaken.flipped(), Outcome::Taken);
    }

    #[test]
    fn kind_mnemonics_roundtrip() {
        for kind in BranchKind::ALL {
            assert_eq!(BranchKind::from_mnemonic(kind.mnemonic()), Some(kind));
        }
        assert_eq!(BranchKind::from_mnemonic('x'), None);
    }

    #[test]
    fn record_accessors_and_direction() {
        let r = BranchRecord::conditional(BranchAddr::new(0x1000), Outcome::Taken)
            .with_target(BranchAddr::new(0x0800));
        assert_eq!(r.addr().raw(), 0x1000);
        assert!(r.is_taken_conditional());
        assert_eq!(r.is_backward(), Some(true));

        let fwd = BranchRecord::conditional(BranchAddr::new(0x1000), Outcome::NotTaken)
            .with_target(BranchAddr::new(0x2000));
        assert_eq!(fwd.is_backward(), Some(false));
        assert!(!fwd.is_taken_conditional());

        let untargeted =
            BranchRecord::new(BranchAddr::new(0x1000), BranchKind::Return, Outcome::Taken);
        assert_eq!(untargeted.is_backward(), None);
        assert!(!untargeted.is_taken_conditional());
    }

    #[test]
    fn display_formats_are_compact() {
        let r = BranchRecord::conditional(BranchAddr::new(0x400100), Outcome::Taken);
        let s = format!("{r}");
        assert!(s.starts_with('C'));
        assert!(s.contains("0x00400100"));
        assert!(s.ends_with('T'));
    }
}
