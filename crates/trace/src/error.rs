//! Error type for trace serialization and validation.

use std::fmt;
use std::io;

/// Errors produced while reading, writing or validating branch traces.
#[derive(Debug)]
pub enum TraceError {
    /// An underlying I/O error from the reader or writer.
    Io(io::Error),
    /// The input did not start with the expected magic bytes.
    BadMagic {
        /// The bytes actually found at the start of the stream.
        found: [u8; 4],
    },
    /// The binary format version is not supported by this build.
    UnsupportedVersion {
        /// Version number found in the header.
        found: u32,
    },
    /// The stream ended in the middle of a record or header.
    UnexpectedEof {
        /// Human-readable description of what was being decoded.
        context: String,
    },
    /// The stream ended in the middle of a record body: the header promised
    /// more records than the bytes that follow can supply.
    ///
    /// Unlike [`TraceError::UnexpectedEof`] (which covers header-level
    /// truncation, where no record boundary exists yet) this variant pins the
    /// failure to a record index and the byte offset the decoder had reached,
    /// so a corrupted multi-gigabyte capture can be diagnosed — and re-fetched
    /// from that offset — without replaying the whole stream.
    TruncatedRecord {
        /// Zero-based index of the record being decoded when bytes ran out.
        record: u64,
        /// Byte offset from the start of the stream reached by the decoder.
        offset: u64,
        /// Which field of the record was being decoded.
        context: String,
    },
    /// A text-format line could not be parsed.
    MalformedLine {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
    /// A record declared an unknown branch-kind code.
    UnknownKind {
        /// The offending code byte or mnemonic.
        code: char,
    },
    /// A declared record count does not match the number of records present.
    CountMismatch {
        /// Count from the header.
        declared: u64,
        /// Records actually decoded.
        actual: u64,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::BadMagic { found } => {
                write!(f, "bad trace magic bytes {found:?}, expected \"BTRT\"")
            }
            TraceError::UnsupportedVersion { found } => {
                write!(f, "unsupported trace format version {found}")
            }
            TraceError::UnexpectedEof { context } => {
                write!(f, "unexpected end of trace stream while reading {context}")
            }
            TraceError::TruncatedRecord {
                record,
                offset,
                context,
            } => write!(
                f,
                "trace truncated at byte offset {offset}: record {record} cut mid-stream \
                 while reading {context}"
            ),
            TraceError::MalformedLine { line, reason } => {
                write!(f, "malformed trace text at line {line}: {reason}")
            }
            TraceError::UnknownKind { code } => {
                write!(f, "unknown branch kind code {code:?}")
            }
            TraceError::CountMismatch { declared, actual } => write!(
                f,
                "trace header declared {declared} records but {actual} were decoded"
            ),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(TraceError, &str)> = vec![
            (TraceError::BadMagic { found: *b"XXXX" }, "bad trace magic"),
            (TraceError::UnsupportedVersion { found: 99 }, "version 99"),
            (
                TraceError::UnexpectedEof {
                    context: "header".into(),
                },
                "header",
            ),
            (
                TraceError::TruncatedRecord {
                    record: 3,
                    offset: 41,
                    context: "address delta".into(),
                },
                "byte offset 41",
            ),
            (
                TraceError::MalformedLine {
                    line: 7,
                    reason: "missing outcome".into(),
                },
                "line 7",
            ),
            (TraceError::UnknownKind { code: 'z' }, "'z'"),
            (
                TraceError::CountMismatch {
                    declared: 10,
                    actual: 9,
                },
                "declared 10",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }

    #[test]
    fn io_errors_are_wrapped_with_source() {
        let io_err = io::Error::other("disk on fire");
        let err = TraceError::from(io_err);
        assert!(err.to_string().contains("disk on fire"));
        assert!(err.source().is_some());
        // Non-IO variants have no source.
        assert!(TraceError::UnknownKind { code: 'q' }.source().is_none());
    }
}
