//! The `BTRT` compact binary trace format.
//!
//! Layout:
//!
//! ```text
//! magic      : 4 bytes  = "BTRT"
//! version    : u32 LE   = 1
//! count      : u64 LE   = number of records
//! bench_len  : u16 LE, benchmark name bytes (UTF-8)
//! input_len  : u16 LE, input set bytes (UTF-8)
//! seed_flag  : u8 (0/1), seed : u64 LE if flag == 1
//! records    : count × record
//! ```
//!
//! Each record is a flag byte followed by a varint-encoded address delta
//! (zig-zag, relative to the previous record's address) and, when present, a
//! varint-encoded absolute target address. The flag byte packs the branch
//! kind (3 bits), the outcome (1 bit) and target presence (1 bit). Typical
//! workload traces compress to roughly 2 bytes per record because consecutive
//! branches tend to be close together in the address space.

use crate::error::TraceError;
use crate::record::{BranchAddr, BranchKind, BranchRecord, Outcome};
use crate::trace::{Trace, TraceBuilder, TraceMetadata};
use crate::Result;
use std::io::{Read, Write};

const MAGIC: [u8; 4] = *b"BTRT";
const VERSION: u32 = 1;

/// Flag-byte bit carrying the outcome (taken when set).
pub(crate) const FLAG_TAKEN: u8 = 1 << 3;
/// Flag-byte bit marking an absolute target varint after the delta.
pub(crate) const FLAG_TARGET: u8 = 1 << 4;
/// Flag-byte mask selecting the branch-kind code.
pub(crate) const KIND_MASK: u8 = 0x07;

/// Upper bound on one encoded record: flag byte plus two maximal (10-byte)
/// varints. The block decoder in [`super::fast`] uses this to know when a
/// record can be decoded without any bounds checks against end-of-buffer.
pub(crate) const MAX_RECORD_BYTES: usize = 1 + 10 + 10;

fn kind_code(kind: BranchKind) -> u8 {
    match kind {
        BranchKind::Conditional => 0,
        BranchKind::Unconditional => 1,
        BranchKind::Call => 2,
        BranchKind::Return => 3,
        BranchKind::Indirect => 4,
    }
}

pub(crate) fn kind_from_code(code: u8) -> Option<BranchKind> {
    Some(match code {
        0 => BranchKind::Conditional,
        1 => BranchKind::Unconditional,
        2 => BranchKind::Call,
        3 => BranchKind::Return,
        4 => BranchKind::Indirect,
        _ => return None,
    })
}

// LEB128/zig-zag primitives are shared with the `BTRW` wire format — one
// canonical-varint implementation for the whole workspace (overflow and
// non-minimal encodings rejected there), with errors mapped to trace terms
// at this boundary.
use btr_wire::varint::{zigzag_decode, zigzag_encode};

fn write_varint<W: Write>(w: &mut W, v: u64) -> Result<()> {
    btr_wire::varint::write_varint(w, v).map_err(varint_error)
}

fn read_varint<R: Read>(r: &mut R, context: &'static str) -> Result<u64> {
    btr_wire::varint::read_varint(r, context).map_err(varint_error)
}

pub(crate) fn varint_error(e: btr_wire::WireError) -> TraceError {
    match e {
        btr_wire::WireError::Io(e) => TraceError::Io(e),
        btr_wire::WireError::UnexpectedEof { context } => TraceError::UnexpectedEof {
            context: context.into(),
        },
        other => TraceError::MalformedLine {
            line: 0,
            reason: other.to_string(),
        },
    }
}

fn write_u16<W: Write>(w: &mut W, v: u16) -> Result<()> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

fn write_u32<W: Write>(w: &mut W, v: u32) -> Result<()> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> Result<()> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

fn read_exact<R: Read, const N: usize>(r: &mut R, context: &'static str) -> Result<[u8; N]> {
    let mut buf = [0u8; N];
    read_exact_into(r, &mut buf, context)?;
    Ok(buf)
}

/// [`Read::read_exact`] with the same contextual-EOF mapping as
/// [`read_exact`], for the variable-length header fields (the benchmark and
/// input-set names) whose size is only known at run time.
fn read_exact_into<R: Read>(r: &mut R, buf: &mut [u8], context: &'static str) -> Result<()> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            TraceError::UnexpectedEof {
                context: context.into(),
            }
        } else {
            TraceError::Io(e)
        }
    })
}

/// Writes a whole trace in the `BTRT` binary format.
///
/// # Errors
///
/// Returns an error if the underlying writer fails.
pub fn write_trace<W: Write>(w: &mut W, trace: &Trace) -> Result<()> {
    write_header(w, trace.metadata(), trace.len() as u64)?;
    let mut prev_addr = 0u64;
    for record in trace.records() {
        write_record(w, record, &mut prev_addr)?;
    }
    Ok(())
}

fn write_header<W: Write>(w: &mut W, meta: &TraceMetadata, count: u64) -> Result<()> {
    w.write_all(&MAGIC)?;
    write_u32(w, VERSION)?;
    write_u64(w, count)?;
    let bench = meta.benchmark.as_bytes();
    let input = meta.input_set.as_bytes();
    write_u16(w, bench.len().min(u16::MAX as usize) as u16)?;
    w.write_all(&bench[..bench.len().min(u16::MAX as usize)])?;
    write_u16(w, input.len().min(u16::MAX as usize) as u16)?;
    w.write_all(&input[..input.len().min(u16::MAX as usize)])?;
    match meta.seed {
        Some(seed) => {
            w.write_all(&[1])?;
            write_u64(w, seed)?;
        }
        None => w.write_all(&[0])?,
    }
    Ok(())
}

fn write_record<W: Write>(w: &mut W, record: &BranchRecord, prev_addr: &mut u64) -> Result<()> {
    let mut flags = kind_code(record.kind());
    if record.outcome().is_taken() {
        flags |= 1 << 3;
    }
    if record.target().is_some() {
        flags |= 1 << 4;
    }
    w.write_all(&[flags])?;
    // Wrapping, to mirror the decoder's `wrapping_add`: a jump across the
    // address-space midpoint is a legal delta, not an overflow.
    let delta = record.addr().raw().wrapping_sub(*prev_addr) as i64;
    write_varint(w, zigzag_encode(delta))?;
    *prev_addr = record.addr().raw();
    if let Some(target) = record.target() {
        write_varint(w, target.raw())?;
    }
    Ok(())
}

/// A [`Read`] adapter counting the bytes consumed so far, so decode errors
/// can report the exact stream offset they occurred at.
#[derive(Debug)]
pub(crate) struct CountingReader<R> {
    pub(crate) inner: R,
    pub(crate) bytes: u64,
}

impl<R: Read> Read for CountingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.bytes += n as u64;
        Ok(n)
    }
}

/// Parses a `BTRT` header, returning the metadata and the declared record
/// count. Shared by the per-record [`BinaryRecordReader`] and the block
/// decoder in [`super::fast`] so the two paths cannot diverge on header
/// validation or error contexts.
pub(crate) fn read_header<R: Read>(reader: &mut CountingReader<R>) -> Result<(TraceMetadata, u64)> {
    let magic: [u8; 4] = read_exact(reader, "magic")?;
    if magic != MAGIC {
        return Err(TraceError::BadMagic { found: magic });
    }
    let version = u32::from_le_bytes(read_exact(reader, "version")?);
    if version != VERSION {
        return Err(TraceError::UnsupportedVersion { found: version });
    }
    let declared = u64::from_le_bytes(read_exact(reader, "record count")?);
    let bench_len = u16::from_le_bytes(read_exact(reader, "benchmark length")?) as usize;
    let mut bench = vec![0u8; bench_len];
    read_exact_into(reader, &mut bench, "benchmark name")?;
    let input_len = u16::from_le_bytes(read_exact(reader, "input length")?) as usize;
    let mut input = vec![0u8; input_len];
    read_exact_into(reader, &mut input, "input name")?;
    let seed_flag: [u8; 1] = read_exact(reader, "seed flag")?;
    let seed = if seed_flag[0] == 1 {
        Some(u64::from_le_bytes(read_exact(reader, "seed")?))
    } else {
        None
    };
    let metadata = TraceMetadata {
        benchmark: String::from_utf8_lossy(&bench).into_owned(),
        input_set: String::from_utf8_lossy(&input).into_owned(),
        description: String::new(),
        seed,
    };
    Ok((metadata, declared))
}

/// Streaming reader yielding one [`BranchRecord`] at a time from a `BTRT`
/// stream, so very large traces do not have to be materialised.
#[derive(Debug)]
pub struct BinaryRecordReader<R> {
    reader: CountingReader<R>,
    metadata: TraceMetadata,
    declared: u64,
    produced: u64,
    prev_addr: u64,
}

impl<R: Read> BinaryRecordReader<R> {
    /// Reads and validates the header, returning a record iterator.
    ///
    /// # Errors
    ///
    /// Fails on bad magic bytes, unsupported versions, or truncated headers.
    pub fn new(reader: R) -> Result<Self> {
        let mut reader = CountingReader {
            inner: reader,
            bytes: 0,
        };
        let (metadata, declared) = read_header(&mut reader)?;
        Ok(BinaryRecordReader {
            reader,
            metadata,
            declared,
            produced: 0,
            prev_addr: 0,
        })
    }

    /// The metadata decoded from the header.
    pub fn metadata(&self) -> &TraceMetadata {
        &self.metadata
    }

    /// The number of records the header declared.
    pub fn declared_count(&self) -> u64 {
        self.declared
    }

    /// The number of bytes consumed from the underlying stream so far
    /// (header included).
    pub fn byte_offset(&self) -> u64 {
        self.reader.bytes
    }

    /// Promotes a record-level end-of-stream into the typed truncation error,
    /// pinning the record index and byte offset; other errors pass through.
    fn truncation(&self, e: TraceError) -> TraceError {
        match e {
            TraceError::UnexpectedEof { context } => TraceError::TruncatedRecord {
                record: self.produced,
                offset: self.reader.bytes,
                context,
            },
            other => other,
        }
    }

    // Kept free of error-path decoration: end-of-stream promotion to
    // `TruncatedRecord` happens once in `next()`, so the hot loop carries no
    // per-field closure captures.
    fn read_record(&mut self) -> Result<BranchRecord> {
        let flags: [u8; 1] = read_exact(&mut self.reader, "record flags")?;
        let flags = flags[0];
        let kind = kind_from_code(flags & KIND_MASK).ok_or(TraceError::UnknownKind {
            code: char::from(b'0' + (flags & KIND_MASK)),
        })?;
        let outcome = Outcome::from_bool(flags & FLAG_TAKEN != 0);
        let has_target = flags & FLAG_TARGET != 0;
        let delta = zigzag_decode(read_varint(&mut self.reader, "address delta")?);
        let addr = self.prev_addr.wrapping_add(delta as u64);
        self.prev_addr = addr;
        let mut record = BranchRecord::new(BranchAddr::new(addr), kind, outcome);
        if has_target {
            let target = read_varint(&mut self.reader, "target address")?;
            record = record.with_target(BranchAddr::new(target));
        }
        Ok(record)
    }
}

impl<R: Read> Iterator for BinaryRecordReader<R> {
    type Item = Result<BranchRecord>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.produced >= self.declared {
            return None;
        }
        match self.read_record() {
            Ok(record) => {
                self.produced += 1;
                Some(Ok(record))
            }
            Err(e) => {
                // Promote end-of-stream to the typed truncation error here —
                // once per failure, not once per field — then fuse the
                // iterator: a decode error is not recoverable mid-stream,
                // since record boundaries are lost.
                let e = self.truncation(e);
                self.produced = self.declared;
                Some(Err(e))
            }
        }
    }
}

/// Reads an entire trace from a `BTRT` stream into memory.
///
/// # Errors
///
/// Fails on any decoding error or if the declared record count does not match
/// the number of records present.
pub fn read_trace<R: Read>(reader: &mut R) -> Result<Trace> {
    let stream = BinaryRecordReader::new(reader)?;
    let declared = stream.declared_count();
    let mut builder = TraceBuilder::with_metadata(stream.metadata().clone());
    builder.reserve(declared.min(1 << 24) as usize);
    let mut actual = 0u64;
    for record in stream {
        builder.push(record?);
        actual += 1;
    }
    if actual != declared {
        return Err(TraceError::CountMismatch { declared, actual });
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut b = TraceBuilder::new("gcc")
            .with_input_set("cccp.i")
            .with_seed(42);
        b.push(BranchRecord::conditional(
            BranchAddr::new(0x0040_0100),
            Outcome::Taken,
        ));
        b.push(
            BranchRecord::new(
                BranchAddr::new(0x0040_0090),
                BranchKind::Call,
                Outcome::Taken,
            )
            .with_target(BranchAddr::new(0x0041_0000)),
        );
        b.push(BranchRecord::conditional(
            BranchAddr::new(0x0040_0104),
            Outcome::NotTaken,
        ));
        b.build()
    }

    #[test]
    fn roundtrip_preserves_records_and_metadata() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        let back = read_trace(&mut buf.as_slice()).unwrap();
        assert_eq!(back.records(), trace.records());
        assert_eq!(back.metadata().benchmark, "gcc");
        assert_eq!(back.metadata().input_set, "cccp.i");
        assert_eq!(back.metadata().seed, Some(42));
    }

    #[test]
    fn empty_trace_roundtrips() {
        let trace = TraceBuilder::new("empty").build();
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        let back = read_trace(&mut buf.as_slice()).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.metadata().benchmark, "empty");
    }

    #[test]
    fn bad_magic_is_rejected() {
        let buf = b"NOPExxxxxxxxxxxxxxxxxxxx".to_vec();
        let err = read_trace(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, TraceError::BadMagic { .. }));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        buf[4] = 9; // corrupt the version field
        let err = read_trace(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, TraceError::UnsupportedVersion { found: 9 }));
    }

    #[test]
    fn truncation_inside_a_record_body_is_typed_with_offset() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        let full_len = buf.len() as u64;
        buf.truncate(buf.len() - 2);
        let err = read_trace(&mut buf.as_slice()).unwrap_err();
        match err {
            TraceError::TruncatedRecord { record, offset, .. } => {
                // The cut lands inside the third record (index 2), after the
                // decoder consumed every remaining byte.
                assert_eq!(record, 2);
                assert_eq!(offset, full_len - 2);
            }
            other => panic!("expected TruncatedRecord, got {other:?}"),
        }
    }

    #[test]
    fn truncation_between_flag_and_delta_is_typed() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        // Keep the header plus the first record's flag byte only: the delta
        // varint of record 0 is missing.
        let reader = BinaryRecordReader::new(buf.as_slice()).unwrap();
        let header_len = reader.byte_offset() as usize;
        buf.truncate(header_len + 1);
        let mut stream = BinaryRecordReader::new(buf.as_slice()).unwrap();
        let err = stream.next().unwrap().unwrap_err();
        match err {
            TraceError::TruncatedRecord {
                record,
                offset,
                context,
            } => {
                assert_eq!(record, 0);
                assert_eq!(offset, header_len as u64 + 1);
                assert_eq!(context, "address delta");
            }
            other => panic!("expected TruncatedRecord, got {other:?}"),
        }
        // The iterator is fused after the error.
        assert!(stream.next().is_none());
    }

    #[test]
    fn truncation_inside_the_header_stays_an_eof_error() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        // Cut inside the record-count field: no record boundary exists yet,
        // so the error stays at header level.
        buf.truncate(10);
        let err = read_trace(&mut buf.as_slice()).unwrap_err();
        assert!(
            matches!(&err, TraceError::UnexpectedEof { context } if context == "record count"),
            "got {err:?}"
        );
    }

    #[test]
    fn truncation_inside_the_benchmark_name_is_contextual() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).expect("writing to a Vec cannot fail");
        // Header prefix: magic (4) + version (4) + count (8) + bench_len (2)
        // = 18 bytes; "gcc" is 3 bytes, so cutting at 19 lands mid-name.
        buf.truncate(19);
        let err = read_trace(&mut buf.as_slice()).expect_err("truncated header must not decode");
        assert!(
            matches!(&err, TraceError::UnexpectedEof { context } if context == "benchmark name"),
            "got {err:?}"
        );
    }

    #[test]
    fn truncation_inside_the_input_name_is_contextual() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).expect("writing to a Vec cannot fail");
        // 18 bytes of fixed header + "gcc" (3) + input_len (2) = 23 bytes;
        // "cccp.i" is 6 bytes, so any cut in (23, 29) lands mid-name.
        buf.truncate(25);
        let err = read_trace(&mut buf.as_slice()).expect_err("truncated header must not decode");
        assert!(
            matches!(&err, TraceError::UnexpectedEof { context } if context == "input name"),
            "got {err:?}"
        );
    }

    #[test]
    fn every_header_truncation_offset_yields_a_contextual_error() {
        // Sweep every proper prefix of the header: each cut must surface as
        // the typed contextual EOF, never a bare `TraceError::Io`.
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).expect("writing to a Vec cannot fail");
        let header_len = BinaryRecordReader::new(buf.as_slice())
            .expect("intact header decodes")
            .byte_offset() as usize;
        for cut in 4..header_len {
            let mut short = buf.clone();
            short.truncate(cut);
            let err =
                read_trace(&mut short.as_slice()).expect_err("truncated header must not decode");
            assert!(
                matches!(err, TraceError::UnexpectedEof { .. }),
                "cut at {cut}: got {err:?}"
            );
        }
    }

    #[test]
    fn streaming_reader_yields_each_record() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        let reader = BinaryRecordReader::new(buf.as_slice()).unwrap();
        assert_eq!(reader.declared_count(), 3);
        let records: Vec<_> = reader.map(|r| r.unwrap()).collect();
        assert_eq!(records.as_slice(), trace.records());
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX / 2, i64::MIN / 2] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX >> 1] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v).unwrap();
            let back = read_varint(&mut buf.as_slice(), "test").unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn encoding_is_compact_for_local_branches() {
        // 1000 branches in a tight loop should average well under 4 bytes each.
        let mut b = TraceBuilder::new("tight");
        for i in 0..1000u64 {
            b.push(BranchRecord::conditional(
                BranchAddr::new(0x0040_0000 + (i % 8) * 4),
                Outcome::from_bool(i % 3 == 0),
            ));
        }
        let trace = b.build();
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        assert!(buf.len() < 4 * 1000, "encoded size {} too large", buf.len());
    }
}
