//! Trace serialization: a compact binary format and a line-oriented text
//! format.
//!
//! * [`binary`] — the `BTRT` format: a small header (magic, version, record
//!   count, metadata) followed by per-record encodings that delta/varint
//!   encode branch addresses and pack kind + outcome + target presence into a
//!   single flag byte. It is the format used for large generated workloads.
//! * [`text`] — one record per line (`C 0x00400100 T`), intended for
//!   hand-written fixtures, debugging and interoperability with scripts.
//! * [`chunked`] — bounded-memory decoding of either format into fixed-size
//!   [`chunked::TraceChunk`]s with incrementally interned conditional
//!   records, for paper-scale traces that must never be materialised whole.
//!
//! Both formats round-trip exactly:
//!
//! ```
//! use btr_trace::{BranchAddr, BranchRecord, Outcome, Trace, TraceBuilder};
//! use btr_trace::io::{binary, text};
//!
//! let mut b = TraceBuilder::new("roundtrip");
//! b.push(BranchRecord::conditional(BranchAddr::new(0x400000), Outcome::Taken));
//! b.push(BranchRecord::conditional(BranchAddr::new(0x400008), Outcome::NotTaken));
//! let trace = b.build();
//!
//! let mut buf = Vec::new();
//! binary::write_trace(&mut buf, &trace)?;
//! let back = binary::read_trace(&mut buf.as_slice())?;
//! assert_eq!(back.records(), trace.records());
//!
//! let mut textbuf = Vec::new();
//! text::write_trace(&mut textbuf, &trace)?;
//! let back = text::read_trace(&mut textbuf.as_slice())?;
//! assert_eq!(back.records(), trace.records());
//! # Ok::<(), btr_trace::TraceError>(())
//! ```

pub mod binary;
pub mod chunked;
pub mod fast;
pub mod text;

pub use binary::{read_trace as read_binary, write_trace as write_binary, BinaryRecordReader};
pub use chunked::{ChunkIter, ChunkStream, ChunkedTraceReader, TraceChunk, DEFAULT_CHUNK_RECORDS};
pub use fast::{read_interned_btrt, FastBtrtReader};
pub use text::{read_trace as read_text, write_trace as write_text, TextRecordReader};
