//! Chunked, bounded-memory trace decoding.
//!
//! [`crate::io::binary::read_trace`] materialises every record before the
//! simulator sees the first one, so memory grows linearly with trace length —
//! untenable for the paper-scale captures (10⁸+ records) the classification
//! analysis is meant to run over. [`ChunkedTraceReader`] decodes the same
//! `BTRT` (or text) stream into bounded, fixed-size [`TraceChunk`]s instead:
//! peak memory is one chunk plus the id-interning tables, independent of
//! trace length.
//!
//! Each chunk carries the dense interned ids of its conditional records,
//! assigned by a persistent [`IncrementalInterner`] — so the ids seen across
//! all chunks are *identical* to the ids [`crate::Trace::intern`] assigns to
//! the eagerly-read trace, no matter the chunk size. That invariant (pinned
//! by `tests/streamed_vs_eager.rs`) is what lets a streaming simulation keep
//! per-branch statistics in flat vectors and still merge bit-identically with
//! the eager path.
//!
//! Any `Read` source works — a file opened via [`ChunkedTraceReader::open_btrt`]
//! (which is `Read + Seek`, letting callers pre-position the stream with
//! pread-style offsets before handing it over), a network socket, or an
//! in-memory buffer; decoding itself is sequential because `BTRT` records are
//! delta-encoded against their predecessor.
//!
//! ```
//! use btr_trace::io::{binary, chunked::ChunkedTraceReader};
//! use btr_trace::{BranchAddr, BranchRecord, Outcome, TraceBuilder};
//!
//! let mut b = TraceBuilder::new("demo");
//! for i in 0..10u64 {
//!     b.push(BranchRecord::conditional(
//!         BranchAddr::new(0x4000 + (i % 3) * 4),
//!         Outcome::from_bool(i % 2 == 0),
//!     ));
//! }
//! let trace = b.build();
//! let mut buf = Vec::new();
//! binary::write_trace(&mut buf, &trace)?;
//!
//! let reader = ChunkedTraceReader::btrt(buf.as_slice(), 4)?;
//! assert_eq!(reader.metadata().benchmark, "demo");
//! let chunks: Vec<_> = reader.collect::<btr_trace::Result<_>>()?;
//! assert_eq!(chunks.len(), 3); // 4 + 4 + 2 records
//! assert_eq!(chunks[2].first_record(), 8);
//! # Ok::<(), btr_trace::TraceError>(())
//! ```

use crate::error::TraceError;
use crate::interned::{IncrementalInterner, InternedRecord};
use crate::io::binary::BinaryRecordReader;
use crate::io::text::TextRecordReader;
use crate::record::BranchRecord;
use crate::trace::TraceMetadata;
use crate::Result;
use std::fs::File;
use std::io::{BufReader, Read};
use std::path::Path;

/// Default records per chunk: 64 Ki records ≈ 2 MiB of decoded records, small
/// enough to stay cache- and RAM-friendly, large enough to amortise per-chunk
/// overhead at tens of millions of records per second.
pub const DEFAULT_CHUNK_RECORDS: usize = 1 << 16;

/// One bounded window of a trace produced by [`ChunkedTraceReader`] (or the
/// block-decoding [`crate::io::fast::FastBtrtReader`]).
///
/// Carries both the raw records (all kinds, for profile building) and the
/// conditional subset in **columnar** (structure-of-arrays) form: parallel
/// address / interned-id / outcome columns, one entry per conditional record,
/// in trace order. The columns are what the simulation hot paths consume —
/// `SwarBlock`/`FusedBlock` packing reads each column sequentially, so no
/// per-record struct is re-touched between decode and replay — while
/// [`TraceChunk::conditional`] still offers the row-wise [`InternedRecord`]
/// view for code that wants one.
///
/// Ids are assigned in global first-appearance order by the reader's
/// persistent interner, so across all chunks they are identical to the ids
/// [`crate::Trace::intern`] assigns to the eagerly-read trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceChunk {
    pub(crate) index: usize,
    pub(crate) first_record: u64,
    pub(crate) records: Vec<BranchRecord>,
    /// Conditional-record address column.
    pub(crate) cond_addrs: Vec<crate::record::BranchAddr>,
    /// Conditional-record dense interned-id column.
    pub(crate) cond_ids: Vec<u32>,
    /// Conditional-record outcome column (`true` = taken).
    pub(crate) cond_taken: Vec<bool>,
}

impl TraceChunk {
    /// An empty chunk, ready to be filled (or recycled) by a reader.
    pub(crate) fn empty() -> Self {
        TraceChunk {
            index: 0,
            first_record: 0,
            records: Vec::new(),
            cond_addrs: Vec::new(),
            cond_ids: Vec::new(),
            cond_taken: Vec::new(),
        }
    }

    /// Clears every buffer, keeping their capacity for reuse.
    pub(crate) fn clear(&mut self) {
        self.records.clear();
        self.cond_addrs.clear();
        self.cond_ids.clear();
        self.cond_taken.clear();
    }

    /// Appends one conditional record to the columns.
    #[inline]
    pub(crate) fn push_conditional(
        &mut self,
        addr: crate::record::BranchAddr,
        id: u32,
        taken: bool,
    ) {
        self.cond_addrs.push(addr);
        self.cond_ids.push(id);
        self.cond_taken.push(taken);
    }

    /// The chunk's position in the stream (0, 1, 2, …).
    pub fn index(&self) -> usize {
        self.index
    }

    /// Absolute index (within the whole trace) of this chunk's first record.
    pub fn first_record(&self) -> u64 {
        self.first_record
    }

    /// The decoded records of this chunk, in trace order.
    pub fn records(&self) -> &[BranchRecord] {
        &self.records
    }

    /// The conditional records of this chunk with their dense interned ids,
    /// in trace order — a row-wise view assembled from the columns.
    pub fn conditional(&self) -> impl ExactSizeIterator<Item = InternedRecord> + '_ {
        self.cond_addrs
            .iter()
            .zip(&self.cond_ids)
            .zip(&self.cond_taken)
            .map(|((&addr, &id), &taken)| InternedRecord::new(addr, id, taken))
    }

    /// Number of conditional records in this chunk.
    pub fn cond_len(&self) -> usize {
        self.cond_addrs.len()
    }

    /// The conditional-record address column, in trace order.
    pub fn cond_addrs(&self) -> &[crate::record::BranchAddr] {
        &self.cond_addrs
    }

    /// The conditional-record interned-id column, parallel to
    /// [`TraceChunk::cond_addrs`].
    pub fn cond_ids(&self) -> &[u32] {
        &self.cond_ids
    }

    /// The conditional-record outcome column (`true` = taken), parallel to
    /// [`TraceChunk::cond_addrs`].
    pub fn cond_taken(&self) -> &[bool] {
        &self.cond_taken
    }

    /// Number of records (of any kind) in this chunk.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the chunk holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Consumes the chunk, returning its raw record vector.
    pub fn into_records(self) -> Vec<BranchRecord> {
        self.records
    }
}

/// A pull source of [`TraceChunk`]s with buffer recycling.
///
/// This is the contract the streaming engine paths (`SimEngine::run_streamed`
/// / `run_fused_streamed` in `btr-sim`) consume: pull the next chunk with
/// [`ChunkStream::pull`], and once done with it hand the chunk *back*
/// with [`ChunkStream::recycle`] so the reader can refill its buffers in
/// place. With a consumer that recycles, steady-state streaming does zero
/// per-chunk allocation — the reader and the engine swap two chunk buffers
/// back and forth.
///
/// Implementations fuse after the first error, like the readers themselves.
/// `recycle` is advisory: the default drops the chunk, and a stream may
/// ignore returned buffers entirely.
pub trait ChunkStream {
    /// Pulls the next chunk: `None` when the stream is exhausted.
    fn pull(&mut self) -> Option<Result<TraceChunk>>;

    /// Returns a consumed chunk's buffers for reuse. Optional.
    fn recycle(&mut self, chunk: TraceChunk) {
        let _ = chunk;
    }
}

impl<S: ChunkStream> ChunkStream for &mut S {
    fn pull(&mut self) -> Option<Result<TraceChunk>> {
        (**self).pull()
    }

    fn recycle(&mut self, chunk: TraceChunk) {
        (**self).recycle(chunk);
    }
}

/// Adapts any iterator of chunk results into a (non-recycling)
/// [`ChunkStream`], for custom chunk sources that are not readers.
#[derive(Debug)]
pub struct ChunkIter<I>(pub I);

impl<I: Iterator<Item = Result<TraceChunk>>> ChunkStream for ChunkIter<I> {
    fn pull(&mut self) -> Option<Result<TraceChunk>> {
        self.0.next()
    }
}

/// Decodes a trace stream into bounded fixed-size [`TraceChunk`]s, interning
/// conditional-branch addresses incrementally as they first appear.
///
/// Generic over any record source (`Iterator<Item = Result<BranchRecord>>`);
/// the provided constructors cover the `BTRT` binary format and the text
/// format, from readers or files. The iterator yields `Result<TraceChunk>`
/// and fuses after the first error.
#[derive(Debug)]
pub struct ChunkedTraceReader<I> {
    source: I,
    metadata: TraceMetadata,
    declared: Option<u64>,
    chunk_records: usize,
    interner: IncrementalInterner,
    next_chunk: usize,
    records_read: u64,
    finished: bool,
    /// Recycled chunk buffers handed back via [`ChunkStream::recycle`]; the
    /// next chunk is decoded into them instead of fresh allocations.
    spare: Option<TraceChunk>,
}

impl<R: Read> ChunkedTraceReader<BinaryRecordReader<R>> {
    /// Starts chunked decoding of a `BTRT` stream, reading and validating the
    /// header eagerly.
    ///
    /// # Errors
    ///
    /// Fails on bad magic bytes, unsupported versions, or truncated headers.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_records` is zero.
    pub fn btrt(reader: R, chunk_records: usize) -> Result<Self> {
        let source = BinaryRecordReader::new(reader)?;
        let metadata = source.metadata().clone();
        let declared = Some(source.declared_count());
        Ok(ChunkedTraceReader::from_records(
            metadata,
            declared,
            source,
            chunk_records,
        ))
    }
}

impl ChunkedTraceReader<BinaryRecordReader<BufReader<File>>> {
    /// Opens a `BTRT` file for chunked decoding.
    ///
    /// # Errors
    ///
    /// Fails if the file cannot be opened or its header is invalid.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_records` is zero.
    pub fn open_btrt<P: AsRef<Path>>(path: P, chunk_records: usize) -> Result<Self> {
        let file = File::open(path)?;
        ChunkedTraceReader::btrt(BufReader::new(file), chunk_records)
    }
}

impl<R: Read> ChunkedTraceReader<TextRecordReader<R>> {
    /// Starts chunked decoding of a text-format stream. The leading comment
    /// block is consumed eagerly so [`ChunkedTraceReader::metadata`] is
    /// populated; the text format declares no record count, so
    /// [`ChunkedTraceReader::declared_count`] is `None`.
    ///
    /// [`ChunkedTraceReader::metadata`] is a snapshot of the *leading*
    /// comment block only. Metadata comments appearing between records (an
    /// unconventional layout the eager [`crate::io::text::read_trace`] does
    /// honour) are folded into the underlying [`TextRecordReader`] as chunks
    /// are consumed — query them through [`ChunkedTraceReader::source`] after
    /// draining:
    ///
    /// ```
    /// use btr_trace::ChunkedTraceReader;
    /// let text = "# benchmark: early\nC 0x40 T\n# seed: 42\nC 0x44 N\n";
    /// let mut reader = ChunkedTraceReader::text(text.as_bytes(), 8);
    /// assert_eq!(reader.metadata().seed, None); // leading block only
    /// for chunk in &mut reader { chunk.unwrap(); }
    /// assert_eq!(reader.source().metadata().seed, Some(42));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `chunk_records` is zero.
    pub fn text(reader: R, chunk_records: usize) -> Self {
        let source = TextRecordReader::new(reader);
        let metadata = source.metadata().clone();
        ChunkedTraceReader::from_records(metadata, None, source, chunk_records)
    }
}

impl ChunkedTraceReader<TextRecordReader<BufReader<File>>> {
    /// Opens a text-format trace file for chunked decoding.
    ///
    /// # Errors
    ///
    /// Fails if the file cannot be opened.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_records` is zero.
    pub fn open_text<P: AsRef<Path>>(path: P, chunk_records: usize) -> Result<Self> {
        let file = File::open(path)?;
        Ok(ChunkedTraceReader::text(
            BufReader::new(file),
            chunk_records,
        ))
    }
}

impl<I: Iterator<Item = Result<BranchRecord>>> ChunkedTraceReader<I> {
    /// Wraps an arbitrary record source. `declared`, when given, is checked
    /// against the number of records the source actually yields.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_records` is zero.
    pub fn from_records(
        metadata: TraceMetadata,
        declared: Option<u64>,
        source: I,
        chunk_records: usize,
    ) -> Self {
        assert!(chunk_records > 0, "chunk size must be at least one record");
        ChunkedTraceReader {
            source,
            metadata,
            declared,
            chunk_records,
            interner: IncrementalInterner::new(),
            next_chunk: 0,
            records_read: 0,
            finished: false,
            spare: None,
        }
    }

    /// The metadata decoded from the stream header (for text input: from the
    /// leading comment block — see [`ChunkedTraceReader::text`]).
    pub fn metadata(&self) -> &TraceMetadata {
        &self.metadata
    }

    /// The underlying record source, e.g. to query a [`TextRecordReader`]'s
    /// up-to-date metadata after mid-stream comment lines were consumed.
    pub fn source(&self) -> &I {
        &self.source
    }

    /// The record count the header declared, if the format carries one.
    pub fn declared_count(&self) -> Option<u64> {
        self.declared
    }

    /// The configured records-per-chunk bound.
    pub fn chunk_records(&self) -> usize {
        self.chunk_records
    }

    /// Records decoded so far across all yielded chunks.
    pub fn records_read(&self) -> u64 {
        self.records_read
    }

    /// Distinct static conditional branches interned so far.
    pub fn static_count(&self) -> usize {
        self.interner.static_count()
    }

    /// The id → address table built so far, in id (first-appearance) order.
    /// Grows monotonically as chunks are consumed; after the last chunk it
    /// equals the eager trace's [`crate::InternedTrace::addrs`].
    pub fn addrs(&self) -> &[crate::record::BranchAddr] {
        self.interner.addrs()
    }
}

impl<I: Iterator<Item = Result<BranchRecord>>> Iterator for ChunkedTraceReader<I> {
    type Item = Result<TraceChunk>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.finished {
            return None;
        }
        // Fill recycled buffers when a consumer handed some back; otherwise
        // size the chunk buffer up front (capped so a huge chunk_records
        // bound or a lying header cannot force a giant allocation).
        let expected = match self.declared {
            Some(declared) => declared
                .saturating_sub(self.records_read)
                .min(self.chunk_records as u64) as usize,
            None => self.chunk_records,
        };
        let mut chunk = self.spare.take().unwrap_or_else(TraceChunk::empty);
        chunk.clear();
        chunk.records.reserve(expected.min(1 << 20));
        let mut exhausted = false;
        while chunk.records.len() < self.chunk_records {
            match self.source.next() {
                Some(Ok(record)) => {
                    if record.kind().is_conditional() {
                        let id = self.interner.intern(record.addr());
                        chunk.push_conditional(record.addr(), id, record.outcome().is_taken());
                    }
                    chunk.records.push(record);
                }
                Some(Err(e)) => {
                    self.finished = true;
                    self.spare = Some(chunk);
                    return Some(Err(e));
                }
                None => {
                    exhausted = true;
                    break;
                }
            }
        }
        let first_record = self.records_read;
        self.records_read += chunk.records.len() as u64;
        if exhausted {
            self.finished = true;
            if let Some(declared) = self.declared {
                if declared != self.records_read {
                    self.spare = Some(chunk);
                    return Some(Err(TraceError::CountMismatch {
                        declared,
                        actual: self.records_read,
                    }));
                }
            }
        }
        if chunk.records.is_empty() {
            self.spare = Some(chunk);
            return None;
        }
        chunk.index = self.next_chunk;
        chunk.first_record = first_record;
        self.next_chunk += 1;
        Some(Ok(chunk))
    }
}

impl<I: Iterator<Item = Result<BranchRecord>>> ChunkStream for ChunkedTraceReader<I> {
    fn pull(&mut self) -> Option<Result<TraceChunk>> {
        self.next()
    }

    fn recycle(&mut self, chunk: TraceChunk) {
        self.spare = Some(chunk);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::binary;
    use crate::record::{BranchAddr, BranchKind, Outcome};
    use crate::trace::{Trace, TraceBuilder};

    fn mixed_trace(n: u64) -> Trace {
        let mut b = TraceBuilder::new("chunks")
            .with_input_set("mix")
            .with_seed(9);
        for i in 0..n {
            if i % 5 == 4 {
                b.push(
                    BranchRecord::new(
                        BranchAddr::new(0x9000 + i * 4),
                        BranchKind::Call,
                        Outcome::Taken,
                    )
                    .with_target(BranchAddr::new(0x1_0000 + i)),
                );
            } else {
                b.push(BranchRecord::conditional(
                    BranchAddr::new(0x4000 + (i % 7) * 4),
                    Outcome::from_bool(i % 3 == 0),
                ));
            }
        }
        b.build()
    }

    fn encode(trace: &Trace) -> Vec<u8> {
        let mut buf = Vec::new();
        binary::write_trace(&mut buf, trace).unwrap();
        buf
    }

    #[test]
    fn chunks_partition_the_stream_in_order() {
        let trace = mixed_trace(103);
        let buf = encode(&trace);
        let reader = ChunkedTraceReader::btrt(buf.as_slice(), 10).unwrap();
        assert_eq!(reader.metadata(), trace.metadata());
        assert_eq!(reader.declared_count(), Some(103));
        assert_eq!(reader.chunk_records(), 10);
        let chunks: Vec<TraceChunk> = reader.map(|c| c.unwrap()).collect();
        assert_eq!(chunks.len(), 11);
        assert_eq!(chunks[10].len(), 3);
        let mut all = Vec::new();
        for (i, chunk) in chunks.iter().enumerate() {
            assert_eq!(chunk.index(), i);
            assert_eq!(chunk.first_record(), all.len() as u64);
            all.extend_from_slice(chunk.records());
        }
        assert_eq!(all.as_slice(), trace.records());
    }

    #[test]
    fn interned_ids_match_the_eager_interner_across_chunk_sizes() {
        let trace = mixed_trace(64);
        let buf = encode(&trace);
        let eager = trace.intern();
        for chunk_records in [1usize, 3, 7, 64, 1000] {
            let mut reader = ChunkedTraceReader::btrt(buf.as_slice(), chunk_records).unwrap();
            let mut streamed = Vec::new();
            for chunk in &mut reader {
                streamed.extend(chunk.unwrap().conditional());
            }
            assert_eq!(streamed.as_slice(), eager.records(), "size {chunk_records}");
            assert_eq!(reader.addrs(), eager.addrs());
            assert_eq!(reader.static_count(), eager.static_count());
            assert_eq!(reader.records_read(), trace.len() as u64);
        }
    }

    #[test]
    fn empty_stream_yields_no_chunks() {
        let trace = TraceBuilder::new("empty").build();
        let buf = encode(&trace);
        let mut reader = ChunkedTraceReader::btrt(buf.as_slice(), 8).unwrap();
        assert!(reader.next().is_none());
        assert!(reader.next().is_none());
        assert_eq!(reader.records_read(), 0);
    }

    #[test]
    fn text_streams_chunk_identically_to_eager_text_reads() {
        let trace = mixed_trace(41);
        let mut buf = Vec::new();
        crate::io::text::write_trace(&mut buf, &trace).unwrap();
        let reader = ChunkedTraceReader::text(buf.as_slice(), 8);
        assert_eq!(reader.metadata(), trace.metadata());
        assert_eq!(reader.declared_count(), None);
        let all: Vec<BranchRecord> = reader.flat_map(|c| c.unwrap().into_records()).collect();
        assert_eq!(all.as_slice(), trace.records());
    }

    #[test]
    fn text_metadata_snapshot_covers_the_leading_block_and_source_stays_current() {
        let text = "# benchmark: demo\nC 0x40 T\n# input: late\n# seed: 7\nC 0x44 N\n";
        let mut reader = ChunkedTraceReader::text(text.as_bytes(), 64);
        // The snapshot sees only the leading comment block…
        assert_eq!(reader.metadata().benchmark, "demo");
        assert_eq!(reader.metadata().seed, None);
        let total: usize = (&mut reader).map(|c| c.unwrap().len()).sum();
        assert_eq!(total, 2);
        // …while the underlying text reader keeps folding mid-stream
        // comments, matching what the eager text reader reports.
        assert_eq!(reader.source().metadata().input_set, "late");
        assert_eq!(reader.source().metadata().seed, Some(7));
        let eager = crate::io::text::read_trace(&mut text.as_bytes()).unwrap();
        assert_eq!(eager.metadata(), reader.source().metadata());
    }

    #[test]
    fn truncated_streams_surface_the_typed_error_and_fuse() {
        let trace = mixed_trace(32);
        let mut buf = encode(&trace);
        buf.truncate(buf.len() - 1);
        let mut reader = ChunkedTraceReader::btrt(buf.as_slice(), 8).unwrap();
        let mut saw_error = false;
        for chunk in &mut reader {
            match chunk {
                Ok(c) => assert!(!c.is_empty()),
                Err(e) => {
                    assert!(matches!(e, TraceError::TruncatedRecord { .. }), "{e:?}");
                    saw_error = true;
                }
            }
        }
        assert!(saw_error);
        assert!(reader.next().is_none());
    }

    #[test]
    fn count_mismatch_is_reported_for_short_custom_sources() {
        let records: Vec<crate::Result<BranchRecord>> = (0..3)
            .map(|i| {
                Ok(BranchRecord::conditional(
                    BranchAddr::new(0x40 + i * 4),
                    Outcome::Taken,
                ))
            })
            .collect();
        let reader = ChunkedTraceReader::from_records(
            TraceMetadata::named("short"),
            Some(5),
            records.into_iter(),
            2,
        );
        let results: Vec<Result<TraceChunk>> = reader.collect();
        assert!(results[0].is_ok());
        assert!(matches!(
            results.last().unwrap(),
            Err(TraceError::CountMismatch {
                declared: 5,
                actual: 3
            })
        ));
    }

    #[test]
    #[should_panic(expected = "at least one record")]
    fn zero_chunk_size_is_rejected() {
        let trace = mixed_trace(4);
        let buf = encode(&trace);
        let _ = ChunkedTraceReader::btrt(buf.as_slice(), 0);
    }

    #[test]
    fn file_backed_reading_round_trips() {
        let trace = mixed_trace(57);
        let dir = std::env::temp_dir().join("btr-chunked-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("roundtrip-{}.btrt", std::process::id()));
        std::fs::write(&path, encode(&trace)).unwrap();
        let reader = ChunkedTraceReader::open_btrt(&path, 16).unwrap();
        let all: Vec<BranchRecord> = reader.flat_map(|c| c.unwrap().into_records()).collect();
        assert_eq!(all.as_slice(), trace.records());
        std::fs::remove_file(&path).ok();
    }
}
