//! Line-oriented text trace format.
//!
//! Header lines start with `#` and carry metadata key/value pairs. Each
//! record line is `<kind> <addr-hex> <T|N> [<target-hex>]`, for example:
//!
//! ```text
//! # benchmark: gcc
//! # input: cccp.i
//! C 0x00400100 T
//! C 0x00400104 N
//! L 0x00400200 T 0x00410000
//! ```

use crate::error::TraceError;
use crate::record::{BranchAddr, BranchKind, BranchRecord, Outcome};
use crate::trace::{Trace, TraceBuilder, TraceMetadata};
use crate::Result;
use std::io::{BufRead, BufReader, Read, Write};

/// Writes a trace in the text format.
///
/// # Errors
///
/// Returns an error if the underlying writer fails.
pub fn write_trace<W: Write>(w: &mut W, trace: &Trace) -> Result<()> {
    let meta = trace.metadata();
    writeln!(w, "# benchmark: {}", meta.benchmark)?;
    if !meta.input_set.is_empty() {
        writeln!(w, "# input: {}", meta.input_set)?;
    }
    if let Some(seed) = meta.seed {
        writeln!(w, "# seed: {seed}")?;
    }
    for record in trace.records() {
        write!(
            w,
            "{} {:#010x} {}",
            record.kind().mnemonic(),
            record.addr().raw(),
            record.outcome()
        )?;
        if let Some(t) = record.target() {
            write!(w, " {:#010x}", t.raw())?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Applies one `# key: value` comment line to the metadata being collected.
fn apply_comment(metadata: &mut TraceMetadata, comment: &str) {
    let comment = comment.trim();
    if let Some(value) = comment.strip_prefix("benchmark:") {
        metadata.benchmark = value.trim().to_string();
    } else if let Some(value) = comment.strip_prefix("input:") {
        metadata.input_set = value.trim().to_string();
    } else if let Some(value) = comment.strip_prefix("seed:") {
        metadata.seed = value.trim().parse().ok();
    }
}

/// Parses one non-empty, non-comment record line.
fn parse_record_line(trimmed: &str, line_no: usize) -> Result<BranchRecord> {
    let mut parts = trimmed.split_whitespace();
    let kind_token = parts.next().ok_or_else(|| TraceError::MalformedLine {
        line: line_no,
        reason: "missing kind".into(),
    })?;
    let kind_char = kind_token.chars().next().unwrap_or('?');
    let kind =
        BranchKind::from_mnemonic(kind_char).ok_or(TraceError::UnknownKind { code: kind_char })?;
    let addr_token = parts.next().ok_or_else(|| TraceError::MalformedLine {
        line: line_no,
        reason: "missing address".into(),
    })?;
    let addr = parse_hex(addr_token, line_no)?;
    let outcome_token = parts.next().ok_or_else(|| TraceError::MalformedLine {
        line: line_no,
        reason: "missing outcome".into(),
    })?;
    let outcome = match outcome_token {
        "T" | "t" | "1" => Outcome::Taken,
        "N" | "n" | "0" => Outcome::NotTaken,
        other => {
            return Err(TraceError::MalformedLine {
                line: line_no,
                reason: format!("invalid outcome {other:?}"),
            })
        }
    };
    let mut record = BranchRecord::new(BranchAddr::new(addr), kind, outcome);
    if let Some(target_token) = parts.next() {
        record = record.with_target(BranchAddr::new(parse_hex(target_token, line_no)?));
    }
    Ok(record)
}

/// Streaming reader yielding one [`BranchRecord`] at a time from a text
/// trace, so large text captures never have to be materialised whole.
///
/// Construction eagerly consumes the leading comment block (blank lines and
/// `# key: value` lines) so [`TextRecordReader::metadata`] is complete before
/// the first record for well-formed files, which write their header first.
/// Comment lines appearing *between* records are still folded into the
/// metadata as they are passed.
#[derive(Debug)]
pub struct TextRecordReader<R> {
    reader: BufReader<R>,
    metadata: TraceMetadata,
    line_no: usize,
    /// First record line, prefetched while scanning the leading header block.
    pending: Option<Result<BranchRecord>>,
    finished: bool,
}

impl<R: Read> TextRecordReader<R> {
    /// Wraps a reader, consuming the leading metadata block.
    pub fn new(reader: R) -> Self {
        let mut stream = TextRecordReader {
            reader: BufReader::new(reader),
            metadata: TraceMetadata::default(),
            line_no: 0,
            pending: None,
            finished: false,
        };
        stream.pending = stream.advance();
        stream
    }

    /// The metadata collected from the comment lines consumed so far.
    pub fn metadata(&self) -> &TraceMetadata {
        &self.metadata
    }

    /// Reads lines until the next record, EOF, or an error.
    fn advance(&mut self) -> Option<Result<BranchRecord>> {
        let mut line = String::new();
        loop {
            line.clear();
            match self.reader.read_line(&mut line) {
                Ok(0) => return None,
                Ok(_) => {}
                Err(e) => return Some(Err(TraceError::Io(e))),
            }
            self.line_no += 1;
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            if let Some(comment) = trimmed.strip_prefix('#') {
                apply_comment(&mut self.metadata, comment);
                continue;
            }
            return Some(parse_record_line(trimmed, self.line_no));
        }
    }
}

impl<R: Read> Iterator for TextRecordReader<R> {
    type Item = Result<BranchRecord>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.finished {
            return None;
        }
        let item = match self.pending.take() {
            Some(pending) => Some(pending),
            None => self.advance(),
        };
        if !matches!(item, Some(Ok(_))) {
            // Fuse after EOF or the first error: record boundaries after a
            // malformed line are unreliable.
            self.finished = true;
        }
        item
    }
}

fn parse_hex(token: &str, line: usize) -> Result<u64> {
    let stripped = token
        .strip_prefix("0x")
        .or_else(|| token.strip_prefix("0X"))
        .unwrap_or(token);
    u64::from_str_radix(stripped, 16).map_err(|_| TraceError::MalformedLine {
        line,
        reason: format!("invalid hex address {token:?}"),
    })
}

/// Reads a trace in the text format.
///
/// # Errors
///
/// Returns an error for malformed lines, unknown kind mnemonics or I/O
/// failures.
pub fn read_trace<R: Read>(reader: &mut R) -> Result<Trace> {
    let mut stream = TextRecordReader::new(reader);
    let mut records = Vec::new();
    for record in &mut stream {
        records.push(record?);
    }
    // Metadata lines may appear anywhere in the file, so the builder is
    // constructed only after every line has been consumed.
    let mut b = TraceBuilder::with_metadata(stream.metadata().clone());
    b.extend(records);
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut b = TraceBuilder::new("perl")
            .with_input_set("primes.pl")
            .with_seed(3);
        b.push(BranchRecord::conditional(
            BranchAddr::new(0x0040_0100),
            Outcome::Taken,
        ));
        b.push(
            BranchRecord::new(
                BranchAddr::new(0x0040_0200),
                BranchKind::Unconditional,
                Outcome::Taken,
            )
            .with_target(BranchAddr::new(0x0041_0000)),
        );
        b.push(BranchRecord::conditional(
            BranchAddr::new(0x0040_0104),
            Outcome::NotTaken,
        ));
        b.build()
    }

    #[test]
    fn roundtrip_preserves_records_and_metadata() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        let back = read_trace(&mut buf.as_slice()).unwrap();
        assert_eq!(back.records(), trace.records());
        assert_eq!(back.metadata().benchmark, "perl");
        assert_eq!(back.metadata().input_set, "primes.pl");
        assert_eq!(back.metadata().seed, Some(3));
    }

    #[test]
    fn parses_hand_written_text() {
        let text = "\
# benchmark: demo
# input: small
C 0x1000 T
C 0x1004 N
R 0x1008 T
";
        let trace = read_trace(&mut text.as_bytes()).unwrap();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.conditional_count(), 2);
        assert_eq!(trace.metadata().benchmark, "demo");
    }

    #[test]
    fn blank_lines_and_comments_are_skipped() {
        let text = "\n\n# just a comment\nC 0x1000 T\n\n";
        let trace = read_trace(&mut text.as_bytes()).unwrap();
        assert_eq!(trace.len(), 1);
    }

    #[test]
    fn lowercase_and_numeric_outcomes_accepted() {
        let text = "C 0x1000 t\nC 0x1004 0\nC 0x1008 1\n";
        let trace = read_trace(&mut text.as_bytes()).unwrap();
        assert_eq!(trace.records()[0].outcome(), Outcome::Taken);
        assert_eq!(trace.records()[1].outcome(), Outcome::NotTaken);
        assert_eq!(trace.records()[2].outcome(), Outcome::Taken);
    }

    #[test]
    fn malformed_lines_are_reported_with_line_numbers() {
        let text = "C 0x1000 T\nC zzzz T\n";
        let err = read_trace(&mut text.as_bytes()).unwrap_err();
        match err {
            TraceError::MalformedLine { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unknown_kind_is_reported() {
        let text = "X 0x1000 T\n";
        let err = read_trace(&mut text.as_bytes()).unwrap_err();
        assert!(matches!(err, TraceError::UnknownKind { code: 'X' }));
    }

    #[test]
    fn missing_fields_are_reported() {
        for text in ["C\n", "C 0x1000\n", "C 0x1000 Q\n"] {
            assert!(read_trace(&mut text.as_bytes()).is_err(), "{text:?}");
        }
    }
}
