//! Slice-based block decoding of `BTRT` streams — the ingest fast path.
//!
//! [`crate::ChunkedTraceReader`] walks a `BTRT` stream through the generic
//! [`Read`] trait: one `read` call per byte inside the varint loops, one
//! bounds-checked dispatch per field. That is the *correctness reference* —
//! simple, works over any reader — but it tops out around 3×10⁷ records/s,
//! an order of magnitude below what the SWAR replay tier can simulate, so
//! every streaming pipeline was decode-bound.
//!
//! [`FastBtrtReader`] closes the gap by changing the unit of work from bytes
//! to blocks:
//!
//! * the stream is pulled into a large reusable buffer with one `read` call
//!   per ~256 KiB, not per byte;
//! * records are decoded straight from `&[u8]` with
//!   [`btr_wire::varint::read_varint_slice`] (single-byte fast path for the
//!   delta-encoded common case). While at least [`MAX_RECORD_BYTES`] bytes
//!   are buffered, a record decode cannot hit end-of-buffer, so the hot loop
//!   carries no refill checks per field;
//! * conditional records land directly in the columnar [`TraceChunk`] layout
//!   (address / id / outcome columns) the simulation paths pack from, and a
//!   small direct-mapped cache in front of the persistent interner short-
//!   circuits the hash lookup for hot branches;
//! * chunk buffers are recycled through [`ChunkStream::recycle`], so
//!   steady-state streaming allocates nothing per chunk.
//!
//! The fast path is **bit-identical** to the slow one — same records, same
//! interned ids, and the same typed errors with the same offsets for the
//! same malformed inputs (`tests/fast_decode_equivalence.rs` pins all three
//! across adversarial chunkings and truncation points). The slow path
//! remains for non-`BTRT` formats and as the reference the equivalence suite
//! compares against.
//!
//! [`MAX_RECORD_BYTES`]: super::binary::MAX_RECORD_BYTES

use crate::error::TraceError;
use crate::interned::{IncrementalInterner, InternedRecord};
use crate::io::binary::{
    kind_from_code, read_header, varint_error, CountingReader, FLAG_TAKEN, FLAG_TARGET, KIND_MASK,
    MAX_RECORD_BYTES,
};
use crate::io::chunked::{ChunkStream, TraceChunk, DEFAULT_CHUNK_RECORDS};
use crate::record::{BranchAddr, BranchRecord, Outcome};
use crate::trace::TraceMetadata;
use crate::InternedTrace;
use crate::Result;
use btr_wire::varint::{read_varint_slice, zigzag_decode};
use std::fs::File;
use std::io::Read;
use std::path::Path;

/// Refill-buffer size: large enough that steady-state decode issues one
/// `read` call per ~10⁵ records, small enough to stay cache-polite.
const BUF_BYTES: usize = 256 * 1024;

/// log₂ of the direct-mapped intern-cache size. 8 Ki entries × 12 bytes
/// cover the static-branch working set of every workload family while the
/// cache itself stays L1/L2-resident.
const CACHE_BITS: u32 = 13;

/// Decodes one record from the front of `bytes`, returning it and its
/// encoded length. Errors use the same contexts as the `Read`-path decoder;
/// a record running past the end of the slice is
/// [`TraceError::UnexpectedEof`], which the caller either retries after a
/// refill or promotes to [`TraceError::TruncatedRecord`] at true EOF.
#[inline]
fn decode_record(bytes: &[u8], prev_addr: u64) -> Result<(BranchRecord, usize)> {
    let Some(&flags) = bytes.first() else {
        return Err(TraceError::UnexpectedEof {
            context: "record flags".into(),
        });
    };
    let kind = kind_from_code(flags & KIND_MASK).ok_or(TraceError::UnknownKind {
        code: char::from(b'0' + (flags & KIND_MASK)),
    })?;
    let outcome = Outcome::from_bool(flags & FLAG_TAKEN != 0);
    let mut used = 1usize;
    let (raw_delta, n) =
        read_varint_slice(&bytes[used..], "address delta").map_err(varint_error)?;
    used += n;
    let addr = prev_addr.wrapping_add(zigzag_decode(raw_delta) as u64);
    let mut record = BranchRecord::new(BranchAddr::new(addr), kind, outcome);
    if flags & FLAG_TARGET != 0 {
        let (target, n) =
            read_varint_slice(&bytes[used..], "target address").map_err(varint_error)?;
        used += n;
        record = record.with_target(BranchAddr::new(target));
    }
    Ok((record, used))
}

/// Block-decoding `BTRT` reader yielding columnar [`TraceChunk`]s.
///
/// Drop-in replacement for [`crate::ChunkedTraceReader`] over `BTRT` input:
/// same header validation, same chunk boundaries, same interned ids, same
/// errors (see the module docs for the equivalence contract), several times
/// the throughput. Implements both [`Iterator`] (for drain-style consumers)
/// and [`ChunkStream`] (for recycling consumers).
#[derive(Debug)]
pub struct FastBtrtReader<R> {
    inner: R,
    buf: Vec<u8>,
    /// First unconsumed byte in `buf`.
    start: usize,
    /// End of valid bytes in `buf`.
    len: usize,
    /// The underlying reader returned 0 — no more bytes will arrive.
    eof: bool,
    /// Total bytes pulled from `inner` (header included). At end-of-stream
    /// truncation this equals the stream length, which is exactly the offset
    /// the byte-at-a-time slow path reports.
    fetched: u64,
    metadata: TraceMetadata,
    declared: u64,
    /// Records fully decoded so far (error reporting uses this, matching the
    /// slow path's per-record counter).
    decoded: u64,
    /// Records in chunks actually yielded.
    records_read: u64,
    prev_addr: u64,
    chunk_records: usize,
    interner: IncrementalInterner,
    /// Direct-mapped cache over `interner`: `cache_keys[s]` holds the raw
    /// address whose id is `cache_ids[s]` (`u32::MAX` = empty slot).
    cache_keys: Vec<u64>,
    cache_ids: Vec<u32>,
    next_chunk: usize,
    finished: bool,
    spare: Option<TraceChunk>,
}

impl<R: Read> FastBtrtReader<R> {
    /// Starts block decoding of a `BTRT` stream, reading and validating the
    /// header eagerly. A zero `chunk_records` bound is treated as one record
    /// per chunk.
    ///
    /// # Errors
    ///
    /// Fails on bad magic bytes, unsupported versions, or truncated headers
    /// — identically to [`crate::ChunkedTraceReader::btrt`].
    pub fn new(reader: R, chunk_records: usize) -> Result<Self> {
        let mut counting = CountingReader {
            inner: reader,
            bytes: 0,
        };
        let (metadata, declared) = read_header(&mut counting)?;
        Ok(FastBtrtReader {
            inner: counting.inner,
            buf: vec![0u8; BUF_BYTES],
            start: 0,
            len: 0,
            eof: false,
            fetched: counting.bytes,
            metadata,
            declared,
            decoded: 0,
            records_read: 0,
            prev_addr: 0,
            chunk_records: chunk_records.max(1),
            interner: IncrementalInterner::new(),
            cache_keys: vec![0; 1 << CACHE_BITS],
            cache_ids: vec![u32::MAX; 1 << CACHE_BITS],
            next_chunk: 0,
            finished: false,
            spare: None,
        })
    }

    /// The metadata decoded from the header.
    pub fn metadata(&self) -> &TraceMetadata {
        &self.metadata
    }

    /// The record count the header declared.
    pub fn declared_count(&self) -> u64 {
        self.declared
    }

    /// The configured records-per-chunk bound.
    pub fn chunk_records(&self) -> usize {
        self.chunk_records
    }

    /// Records decoded so far across all yielded chunks.
    pub fn records_read(&self) -> u64 {
        self.records_read
    }

    /// Distinct static conditional branches interned so far.
    pub fn static_count(&self) -> usize {
        self.interner.static_count()
    }

    /// The id → address table built so far, in id (first-appearance) order.
    pub fn addrs(&self) -> &[BranchAddr] {
        self.interner.addrs()
    }

    /// Interns through the direct-mapped cache, falling back to the
    /// persistent interner (and refreshing the slot) on a miss. Ids are
    /// identical either way — the cache only skips the hash lookup.
    #[inline]
    fn intern_cached(&mut self, addr: BranchAddr) -> u32 {
        let raw = addr.raw();
        let slot = (raw.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - CACHE_BITS)) as usize;
        if self.cache_keys[slot] == raw {
            let id = self.cache_ids[slot];
            if id != u32::MAX {
                return id;
            }
        }
        let id = self.interner.intern(addr);
        self.cache_keys[slot] = raw;
        self.cache_ids[slot] = id;
        id
    }

    /// Slides the unconsumed tail to the buffer front and performs one
    /// successful `read` into the freed space (`ErrorKind::Interrupted` is
    /// retried transparently, like the slow path's byte reads). A zero-byte
    /// read marks end-of-stream.
    fn refill(&mut self) -> Result<()> {
        if self.start > 0 {
            self.buf.copy_within(self.start..self.len, 0);
            self.len -= self.start;
            self.start = 0;
        }
        loop {
            match self.inner.read(&mut self.buf[self.len..]) {
                Ok(0) => {
                    self.eof = true;
                    return Ok(());
                }
                Ok(n) => {
                    self.len += n;
                    self.fetched += n as u64;
                    return Ok(());
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(TraceError::Io(e)),
            }
        }
    }

    /// Decodes records into `chunk` until it is full or the declared count
    /// is reached. Errors carry the exact record index and stream offset the
    /// slow path would report.
    fn fill_chunk(&mut self, chunk: &mut TraceChunk) -> Result<()> {
        while chunk.records.len() < self.chunk_records && self.decoded < self.declared {
            let avail = self.len - self.start;
            // The hot path runs with a full record guaranteed in the buffer;
            // only the stream tail (or a socket trickling bytes) drops to
            // the refill/tail-decode handling below.
            if avail < MAX_RECORD_BYTES && !self.eof {
                self.refill()?;
                continue;
            }
            if avail == 0 {
                // Clean EOF before the declared count: the slow path fails
                // reading the next flag byte and reports every byte consumed.
                return Err(TraceError::TruncatedRecord {
                    record: self.decoded,
                    offset: self.fetched,
                    context: "record flags".into(),
                });
            }
            match decode_record(&self.buf[self.start..self.len], self.prev_addr) {
                Ok((record, used)) => {
                    self.start += used;
                    self.decoded += 1;
                    self.prev_addr = record.addr().raw();
                    if record.kind().is_conditional() {
                        let id = self.intern_cached(record.addr());
                        chunk.push_conditional(record.addr(), id, record.outcome().is_taken());
                    }
                    chunk.records.push(record);
                }
                Err(TraceError::UnexpectedEof { context }) => {
                    // Only reachable at true EOF (see the refill guard): the
                    // record runs past the end of the stream.
                    return Err(TraceError::TruncatedRecord {
                        record: self.decoded,
                        offset: self.fetched,
                        context,
                    });
                }
                Err(other) => return Err(other),
            }
        }
        Ok(())
    }
}

impl FastBtrtReader<File> {
    /// Opens a `BTRT` file for block decoding. Reads are block-sized, so no
    /// `BufReader` wrapper is needed.
    ///
    /// # Errors
    ///
    /// Fails if the file cannot be opened or its header is invalid.
    pub fn open<P: AsRef<Path>>(path: P, chunk_records: usize) -> Result<Self> {
        FastBtrtReader::new(File::open(path)?, chunk_records)
    }
}

impl<R: Read> Iterator for FastBtrtReader<R> {
    type Item = Result<TraceChunk>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.finished {
            return None;
        }
        let mut chunk = self.spare.take().unwrap_or_else(TraceChunk::empty);
        chunk.clear();
        let expected = self
            .declared
            .saturating_sub(self.decoded)
            .min(self.chunk_records as u64) as usize;
        chunk.records.reserve(expected.min(1 << 20));
        match self.fill_chunk(&mut chunk) {
            Ok(()) => {}
            Err(e) => {
                // Fuse, recycling the partial chunk's buffers: a decode
                // error is not recoverable mid-stream (record boundaries are
                // lost), matching the slow path's behaviour of discarding
                // the partial chunk.
                self.finished = true;
                self.spare = Some(chunk);
                return Some(Err(e));
            }
        }
        if chunk.records.is_empty() {
            self.finished = true;
            self.spare = Some(chunk);
            return None;
        }
        chunk.index = self.next_chunk;
        chunk.first_record = self.records_read;
        self.records_read += chunk.records.len() as u64;
        if self.decoded >= self.declared {
            self.finished = true;
        }
        self.next_chunk += 1;
        Some(Ok(chunk))
    }
}

impl<R: Read> ChunkStream for FastBtrtReader<R> {
    fn pull(&mut self) -> Option<Result<TraceChunk>> {
        self.next()
    }

    fn recycle(&mut self, chunk: TraceChunk) {
        self.spare = Some(chunk);
    }
}

/// Reads a `BTRT` file through the fast path straight into an
/// [`InternedTrace`] (conditional records only, with metadata), the form the
/// simulation engine consumes. This is what `btr-shard` workers use to load
/// a shared trace file instead of regenerating the workload per unit.
///
/// # Errors
///
/// Fails on any decode error the streaming fast path would report.
pub fn read_interned_btrt<P: AsRef<Path>>(path: P) -> Result<(TraceMetadata, InternedTrace)> {
    let mut reader = FastBtrtReader::open(path, DEFAULT_CHUNK_RECORDS)?;
    let mut records: Vec<InternedRecord> =
        Vec::with_capacity(reader.declared_count().min(1 << 24) as usize);
    while let Some(chunk) = reader.pull() {
        let chunk = chunk?;
        records.extend(chunk.conditional());
        reader.recycle(chunk);
    }
    let metadata = reader.metadata.clone();
    Ok((
        metadata,
        InternedTrace::from_parts(reader.interner.into_addrs(), records),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::binary;
    use crate::record::BranchKind;
    use crate::trace::{Trace, TraceBuilder};

    fn mixed_trace(n: u64) -> Trace {
        let mut b = TraceBuilder::new("fast").with_input_set("mix").with_seed(3);
        for i in 0..n {
            if i % 5 == 4 {
                b.push(
                    BranchRecord::new(
                        BranchAddr::new(0x9000 + i * 4),
                        BranchKind::Call,
                        Outcome::Taken,
                    )
                    .with_target(BranchAddr::new(0x1_0000 + i)),
                );
            } else {
                b.push(BranchRecord::conditional(
                    BranchAddr::new(0x4000 + (i % 7) * 4),
                    Outcome::from_bool(i % 3 == 0),
                ));
            }
        }
        b.build()
    }

    fn encode(trace: &Trace) -> Vec<u8> {
        let mut buf = Vec::new();
        binary::write_trace(&mut buf, trace).expect("writing to a Vec cannot fail");
        buf
    }

    #[test]
    fn fast_chunks_match_the_slow_reader_exactly() {
        let trace = mixed_trace(1003);
        let buf = encode(&trace);
        for chunk_records in [1usize, 7, 64, 100_000] {
            let slow: Vec<TraceChunk> =
                crate::ChunkedTraceReader::btrt(buf.as_slice(), chunk_records)
                    .expect("valid header")
                    .map(|c| c.expect("valid stream"))
                    .collect();
            let mut fast_reader =
                FastBtrtReader::new(buf.as_slice(), chunk_records).expect("valid header");
            let fast: Vec<TraceChunk> = (&mut fast_reader)
                .map(|c| c.expect("valid stream"))
                .collect();
            assert_eq!(fast, slow, "chunk size {chunk_records}");
            assert_eq!(fast_reader.records_read(), trace.len() as u64);
            assert_eq!(fast_reader.addrs(), trace.intern().addrs());
        }
    }

    #[test]
    fn recycling_reuses_the_same_buffers() {
        let trace = mixed_trace(300);
        let buf = encode(&trace);
        let mut reader = FastBtrtReader::new(buf.as_slice(), 64).expect("valid header");
        let mut total = 0usize;
        let mut ptr = None;
        while let Some(chunk) = reader.pull() {
            let chunk = chunk.expect("valid stream");
            total += chunk.len();
            // After the first swap the reader refills the exact buffer we
            // handed back: pointer-stable, hence allocation-free.
            if let Some(prev) = ptr {
                assert_eq!(prev, chunk.records().as_ptr());
            }
            ptr = Some(chunk.records().as_ptr());
            reader.recycle(chunk);
        }
        assert_eq!(total, trace.len());
    }

    #[test]
    fn truncated_streams_report_the_slow_path_error() {
        let trace = mixed_trace(64);
        let mut buf = encode(&trace);
        buf.truncate(buf.len() - 3);
        let slow_err = crate::ChunkedTraceReader::btrt(buf.as_slice(), 16)
            .expect("valid header")
            .find_map(|c| c.err())
            .expect("truncated stream errors");
        let fast_err = FastBtrtReader::new(buf.as_slice(), 16)
            .expect("valid header")
            .find_map(|c| c.err())
            .expect("truncated stream errors");
        assert_eq!(format!("{fast_err:?}"), format!("{slow_err:?}"));
    }

    #[test]
    fn read_interned_matches_eager_interning() {
        let trace = mixed_trace(517);
        let dir = std::env::temp_dir().join("btr-fast-test");
        std::fs::create_dir_all(&dir).expect("temp dir is writable");
        let path = dir.join(format!("interned-{}.btrt", std::process::id()));
        std::fs::write(&path, encode(&trace)).expect("temp file is writable");
        let (metadata, interned) = read_interned_btrt(&path).expect("valid file decodes");
        assert_eq!(&metadata, trace.metadata());
        assert_eq!(interned, trace.intern());
        std::fs::remove_file(&path).ok();
    }
}
