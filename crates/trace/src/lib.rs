//! # btr-trace
//!
//! Branch trace substrate for the Branch Transition Rate (BTR) reproduction.
//!
//! This crate provides the data model shared by every other crate in the
//! workspace: individual branch execution [`record::BranchRecord`]s, in-memory
//! [`trace::Trace`]s, a compact binary and a line-oriented text serialization
//! format ([`io`]), stream adapters for filtering and windowing ([`filter`]),
//! and raw per-address statistics accumulation ([`stats`]).
//!
//! The original paper instrumented SimpleScalar's `sim-bpred` to observe the
//! dynamic stream of *conditional* branch outcomes. Everything the paper
//! measures — taken rate, transition rate, per-class predictor miss rates — is
//! a pure function of that stream, so a faithful trace model is the foundation
//! of the whole reproduction.
//!
//! ## Quick example
//!
//! ```
//! use btr_trace::{BranchAddr, BranchKind, BranchRecord, Outcome, Trace, TraceBuilder};
//!
//! let mut builder = TraceBuilder::new("demo");
//! let addr = BranchAddr::new(0x4000_1000);
//! for i in 0..8u64 {
//!     builder.push(BranchRecord::conditional(addr, Outcome::from_bool(i % 2 == 0)));
//! }
//! let trace: Trace = builder.build();
//! assert_eq!(trace.len(), 8);
//! assert_eq!(trace.stats().total_conditional(), 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod filter;
pub mod interned;
pub mod io;
pub mod record;
pub mod stats;
pub mod trace;
pub mod wire;

pub use error::TraceError;
pub use filter::{ConditionalOnly, Sampled, Windowed};
pub use interned::{IncrementalInterner, InternedRecord, InternedTrace};
pub use io::chunked::{
    ChunkIter, ChunkStream, ChunkedTraceReader, TraceChunk, DEFAULT_CHUNK_RECORDS,
};
pub use io::fast::{read_interned_btrt, FastBtrtReader};
pub use record::{BranchAddr, BranchKind, BranchRecord, Outcome};
pub use stats::{AddrStats, DenseTraceStats, TraceStats};
pub use trace::{Trace, TraceBuilder, TraceMetadata};

/// Result alias used across this crate.
pub type Result<T> = std::result::Result<T, TraceError>;
