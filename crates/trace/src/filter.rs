//! Iterator adapters over branch-record streams.
//!
//! The paper measures *conditional branches only* ([`ConditionalOnly`]),
//! sometimes over sub-windows of execution ([`Windowed`]), and large traces
//! are commonly thinned by deterministic sampling for quick experiments
//! ([`Sampled`]). These adapters work over any `Iterator<Item = BranchRecord>`
//! so they compose with both in-memory traces and streaming readers.

use crate::record::{BranchAddr, BranchRecord};

/// Yields only conditional-branch records from the underlying stream.
#[derive(Debug, Clone)]
pub struct ConditionalOnly<I> {
    inner: I,
}

impl<I> ConditionalOnly<I> {
    /// Wraps an iterator of records.
    pub fn new(inner: I) -> Self {
        ConditionalOnly { inner }
    }
}

impl<I: Iterator<Item = BranchRecord>> Iterator for ConditionalOnly<I> {
    type Item = BranchRecord;

    fn next(&mut self) -> Option<BranchRecord> {
        self.inner.by_ref().find(|r| r.kind().is_conditional())
    }
}

/// Deterministically samples one record in every `period` records.
///
/// Sampling is positional (record index modulo `period`), so it is
/// reproducible and does not need a random source.
#[derive(Debug, Clone)]
pub struct Sampled<I> {
    inner: I,
    period: usize,
    index: usize,
}

impl<I> Sampled<I> {
    /// Wraps an iterator, keeping one record in every `period`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(inner: I, period: usize) -> Self {
        assert!(period > 0, "sampling period must be non-zero");
        Sampled {
            inner,
            period,
            index: 0,
        }
    }
}

impl<I: Iterator<Item = BranchRecord>> Iterator for Sampled<I> {
    type Item = BranchRecord;

    fn next(&mut self) -> Option<BranchRecord> {
        for r in self.inner.by_ref() {
            let keep = self.index.is_multiple_of(self.period);
            self.index += 1;
            if keep {
                return Some(r);
            }
        }
        None
    }
}

/// Restricts the stream to the half-open index window `[start, end)`.
#[derive(Debug, Clone)]
pub struct Windowed<I> {
    inner: I,
    start: usize,
    end: usize,
    index: usize,
}

impl<I> Windowed<I> {
    /// Wraps an iterator, keeping records with index in `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn new(inner: I, start: usize, end: usize) -> Self {
        assert!(start <= end, "window start must not exceed end");
        Windowed {
            inner,
            start,
            end,
            index: 0,
        }
    }
}

impl<I: Iterator<Item = BranchRecord>> Iterator for Windowed<I> {
    type Item = BranchRecord;

    fn next(&mut self) -> Option<BranchRecord> {
        while self.index < self.end {
            let r = self.inner.next()?;
            let i = self.index;
            self.index += 1;
            if i >= self.start {
                return Some(r);
            }
        }
        None
    }
}

/// Keeps only records whose branch address satisfies a predicate.
#[derive(Debug, Clone)]
pub struct AddrFiltered<I, F> {
    inner: I,
    pred: F,
}

impl<I, F> AddrFiltered<I, F> {
    /// Wraps an iterator with an address predicate.
    pub fn new(inner: I, pred: F) -> Self {
        AddrFiltered { inner, pred }
    }
}

impl<I, F> Iterator for AddrFiltered<I, F>
where
    I: Iterator<Item = BranchRecord>,
    F: FnMut(BranchAddr) -> bool,
{
    type Item = BranchRecord;

    fn next(&mut self) -> Option<BranchRecord> {
        let pred = &mut self.pred;
        self.inner.by_ref().find(|r| pred(r.addr()))
    }
}

/// Extension trait adding the adapters to any record iterator.
pub trait RecordStreamExt: Iterator<Item = BranchRecord> + Sized {
    /// Keeps only conditional branches.
    fn conditional_only(self) -> ConditionalOnly<Self> {
        ConditionalOnly::new(self)
    }

    /// Keeps one record per `period` records.
    fn sampled(self, period: usize) -> Sampled<Self> {
        Sampled::new(self, period)
    }

    /// Keeps records with index in `[start, end)`.
    fn windowed(self, start: usize, end: usize) -> Windowed<Self> {
        Windowed::new(self, start, end)
    }

    /// Keeps records whose address satisfies `pred`.
    fn filter_addr<F: FnMut(BranchAddr) -> bool>(self, pred: F) -> AddrFiltered<Self, F> {
        AddrFiltered::new(self, pred)
    }
}

impl<I: Iterator<Item = BranchRecord>> RecordStreamExt for I {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{BranchKind, Outcome};

    fn cond(addr: u64, taken: bool) -> BranchRecord {
        BranchRecord::conditional(BranchAddr::new(addr), Outcome::from_bool(taken))
    }

    fn call(addr: u64) -> BranchRecord {
        BranchRecord::new(BranchAddr::new(addr), BranchKind::Call, Outcome::Taken)
    }

    #[test]
    fn conditional_only_drops_other_kinds() {
        let stream = vec![cond(0x10, true), call(0x14), cond(0x18, false), call(0x1c)];
        let kept: Vec<_> = stream.into_iter().conditional_only().collect();
        assert_eq!(kept.len(), 2);
        assert!(kept.iter().all(|r| r.kind().is_conditional()));
    }

    #[test]
    fn sampling_keeps_every_nth_record() {
        let stream: Vec<_> = (0..10).map(|i| cond(0x100 + i * 4, true)).collect();
        let kept: Vec<_> = stream.into_iter().sampled(3).collect();
        // indices 0, 3, 6, 9
        assert_eq!(kept.len(), 4);
        assert_eq!(kept[0].addr().raw(), 0x100);
        assert_eq!(kept[1].addr().raw(), 0x100 + 3 * 4);
    }

    #[test]
    fn sampling_period_one_is_identity() {
        let stream: Vec<_> = (0..5).map(|i| cond(0x100 + i, true)).collect();
        let kept: Vec<_> = stream.clone().into_iter().sampled(1).collect();
        assert_eq!(kept, stream);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn sampling_rejects_zero_period() {
        let _ = Sampled::new(std::iter::empty::<BranchRecord>(), 0);
    }

    #[test]
    fn window_selects_index_range() {
        let stream: Vec<_> = (0..10).map(|i| cond(i, true)).collect();
        let kept: Vec<_> = stream.into_iter().windowed(2, 5).collect();
        assert_eq!(kept.len(), 3);
        assert_eq!(kept[0].addr().raw(), 2);
        assert_eq!(kept[2].addr().raw(), 4);
    }

    #[test]
    fn window_empty_and_out_of_range() {
        let stream: Vec<_> = (0..3).map(|i| cond(i, true)).collect();
        assert_eq!(stream.clone().into_iter().windowed(1, 1).count(), 0);
        assert_eq!(stream.into_iter().windowed(2, 100).count(), 1);
    }

    #[test]
    #[should_panic(expected = "start must not exceed end")]
    fn window_rejects_inverted_range() {
        let _ = Windowed::new(std::iter::empty::<BranchRecord>(), 5, 2);
    }

    #[test]
    fn addr_filter_selects_addresses() {
        let stream = vec![cond(0x10, true), cond(0x20, false), cond(0x10, false)];
        let kept: Vec<_> = stream
            .into_iter()
            .filter_addr(|a| a.raw() == 0x10)
            .collect();
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn adapters_compose() {
        let stream: Vec<_> = (0..20)
            .map(|i| {
                if i % 5 == 0 {
                    call(i)
                } else {
                    cond(i, i % 2 == 0)
                }
            })
            .collect();
        let kept: Vec<_> = stream
            .into_iter()
            .conditional_only()
            .windowed(0, 10)
            .sampled(2)
            .collect();
        assert_eq!(kept.len(), 5);
        assert!(kept.iter().all(|r| r.kind().is_conditional()));
    }
}
