//! Raw per-address and whole-trace statistics.
//!
//! These are the *counts* from which the paper's two metrics are later
//! derived by `btr-core`:
//!
//! * **taken rate** = `taken / executions`
//! * **transition rate** = `transitions / executions`
//!
//! A *transition* is counted whenever execution *i* of a static branch goes in
//! the opposite direction from execution *i−1* of the same branch. The first
//! execution of a branch can never be a transition, so
//! `transitions <= executions - 1` always holds for an executed branch.

use crate::record::{BranchAddr, BranchRecord, Outcome};
use std::collections::BTreeMap;

/// Raw outcome counts for a single static (per-address) conditional branch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AddrStats {
    executions: u64,
    taken: u64,
    transitions: u64,
    last_outcome: Option<Outcome>,
}

impl AddrStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        AddrStats::default()
    }

    /// Records one dynamic execution with the given outcome.
    pub fn observe(&mut self, outcome: Outcome) {
        self.executions += 1;
        if outcome.is_taken() {
            self.taken += 1;
        }
        if let Some(prev) = self.last_outcome {
            if prev != outcome {
                self.transitions += 1;
            }
        }
        self.last_outcome = Some(outcome);
    }

    /// Total dynamic executions observed.
    pub fn executions(&self) -> u64 {
        self.executions
    }

    /// Number of executions that were taken.
    pub fn taken(&self) -> u64 {
        self.taken
    }

    /// Number of executions that were not taken.
    pub fn not_taken(&self) -> u64 {
        self.executions - self.taken
    }

    /// Number of direction changes relative to the immediately preceding
    /// execution of the same branch.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// The outcome of the most recent execution, if any.
    pub fn last_outcome(&self) -> Option<Outcome> {
        self.last_outcome
    }

    /// Fraction of executions that were taken, or `None` if never executed.
    pub fn taken_fraction(&self) -> Option<f64> {
        if self.executions == 0 {
            None
        } else {
            Some(self.taken as f64 / self.executions as f64)
        }
    }

    /// Fraction of executions that were transitions, or `None` if never
    /// executed.
    ///
    /// The denominator is the execution count (as in the paper), not
    /// `executions - 1`, so a branch executed exactly once has transition
    /// fraction 0.
    pub fn transition_fraction(&self) -> Option<f64> {
        if self.executions == 0 {
            None
        } else {
            Some(self.transitions as f64 / self.executions as f64)
        }
    }

    /// Merges the counts of `other` into `self`.
    ///
    /// Merging is intended for combining statistics of the *same* static
    /// branch gathered over consecutive trace segments: the transition between
    /// the last outcome of `self` and the first outcome of `other` is not
    /// recoverable from the summaries alone, so the merged transition count is
    /// a lower bound (off by at most one per merge).
    pub fn merge(&mut self, other: &AddrStats) {
        self.executions += other.executions;
        self.taken += other.taken;
        self.transitions += other.transitions;
        if other.last_outcome.is_some() {
            self.last_outcome = other.last_outcome;
        }
    }
}

/// Raw statistics for an entire trace, keyed by static branch address.
///
/// Only conditional branches contribute to the per-address table; other
/// control-transfer kinds are tallied in aggregate so that tools can report
/// trace composition.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceStats {
    per_addr: BTreeMap<BranchAddr, AddrStats>,
    total_conditional: u64,
    total_other: u64,
}

impl TraceStats {
    /// Creates an empty statistics table.
    pub fn new() -> Self {
        TraceStats::default()
    }

    /// Records one trace record.
    pub fn observe(&mut self, record: &BranchRecord) {
        if record.kind().is_conditional() {
            self.total_conditional += 1;
            self.per_addr
                .entry(record.addr())
                .or_default()
                .observe(record.outcome());
        } else {
            self.total_other += 1;
        }
    }

    /// Total number of dynamic conditional branches observed.
    pub fn total_conditional(&self) -> u64 {
        self.total_conditional
    }

    /// Total number of non-conditional control transfers observed.
    pub fn total_other(&self) -> u64 {
        self.total_other
    }

    /// Number of distinct static conditional branches.
    pub fn static_conditional_count(&self) -> usize {
        self.per_addr.len()
    }

    /// Looks up the accumulator for one static branch.
    pub fn addr(&self, addr: BranchAddr) -> Option<&AddrStats> {
        self.per_addr.get(&addr)
    }

    /// Iterates over `(address, stats)` pairs in address order.
    pub fn iter(&self) -> impl Iterator<Item = (BranchAddr, &AddrStats)> {
        self.per_addr.iter().map(|(a, s)| (*a, s))
    }

    /// Sum of per-address taken counts.
    pub fn total_taken(&self) -> u64 {
        self.per_addr.values().map(|s| s.taken()).sum()
    }

    /// Sum of per-address transition counts.
    pub fn total_transitions(&self) -> u64 {
        self.per_addr.values().map(|s| s.transitions()).sum()
    }

    /// Overall taken fraction across all conditional executions.
    pub fn overall_taken_fraction(&self) -> Option<f64> {
        if self.total_conditional == 0 {
            None
        } else {
            Some(self.total_taken() as f64 / self.total_conditional as f64)
        }
    }

    /// The address with the most dynamic executions, if any.
    pub fn hottest_branch(&self) -> Option<(BranchAddr, &AddrStats)> {
        self.iter().max_by_key(|(_, s)| s.executions())
    }

    /// Merges another statistics table into this one (see
    /// [`AddrStats::merge`] for the transition-count caveat).
    pub fn merge(&mut self, other: &TraceStats) {
        self.total_conditional += other.total_conditional;
        self.total_other += other.total_other;
        for (addr, stats) in other.iter() {
            self.per_addr.entry(addr).or_default().merge(stats);
        }
    }
}

/// Id-indexed statistics accumulator for streamed classification.
///
/// [`TraceStats::observe`] pays a `BTreeMap` traversal per record, which
/// co-dominates a streamed classify once decode is fast. `DenseTraceStats`
/// keeps one [`AddrStats`] slot per dense interned id instead — chunk columns
/// feed straight into a flat vector index — and converts to the map-keyed
/// [`TraceStats`] once at the end. Because each static branch sees exactly
/// the same outcome sequence either way, the conversion is bit-identical to
/// having observed every record through [`TraceStats`] directly.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DenseTraceStats {
    /// Per-id accumulators; the id → address table is rebuilt from the
    /// defining (first-appearance) records.
    per_id: Vec<AddrStats>,
    addrs: Vec<BranchAddr>,
    total_conditional: u64,
    total_other: u64,
}

impl DenseTraceStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        DenseTraceStats::default()
    }

    /// Folds one chunk's records in: conditionals through the id-indexed
    /// columns, non-conditionals as an aggregate count.
    ///
    /// Chunks must arrive in stream order with ids assigned by one persistent
    /// interner (what [`crate::ChunkedTraceReader`] and
    /// [`crate::FastBtrtReader`] produce) — a dense id first appears on its
    /// defining record.
    pub fn observe_chunk(&mut self, chunk: &crate::TraceChunk) {
        let cond = chunk.cond_len();
        self.total_conditional += cond as u64;
        self.total_other += (chunk.len() - cond) as u64;
        for ((&addr, &id), &taken) in chunk
            .cond_addrs()
            .iter()
            .zip(chunk.cond_ids())
            .zip(chunk.cond_taken())
        {
            let id = id as usize;
            if id == self.per_id.len() {
                self.per_id.push(AddrStats::new());
                self.addrs.push(addr);
            }
            self.per_id[id].observe(Outcome::from_bool(taken));
        }
    }

    /// Total number of dynamic conditional branches observed.
    pub fn total_conditional(&self) -> u64 {
        self.total_conditional
    }

    /// Total number of non-conditional control transfers observed.
    pub fn total_other(&self) -> u64 {
        self.total_other
    }

    /// Number of distinct static conditional branches.
    pub fn static_conditional_count(&self) -> usize {
        self.per_id.len()
    }

    /// Converts to the address-keyed [`TraceStats`], building the map once.
    pub fn into_trace_stats(self) -> TraceStats {
        TraceStats {
            per_addr: self.addrs.into_iter().zip(self.per_id).collect(),
            total_conditional: self.total_conditional,
            total_other: self.total_other,
        }
    }
}

impl<'a> IntoIterator for &'a TraceStats {
    type Item = (BranchAddr, &'a AddrStats);
    type IntoIter = std::vec::IntoIter<(BranchAddr, &'a AddrStats)>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter().collect::<Vec<_>>().into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::BranchKind;

    fn rec(addr: u64, taken: bool) -> BranchRecord {
        BranchRecord::conditional(BranchAddr::new(addr), Outcome::from_bool(taken))
    }

    #[test]
    fn addr_stats_count_taken_and_transitions() {
        let mut s = AddrStats::new();
        // T T N T N N  -> taken 3/6, transitions: T->T no, T->N yes, N->T yes, T->N yes, N->N no = 3
        for taken in [true, true, false, true, false, false] {
            s.observe(Outcome::from_bool(taken));
        }
        assert_eq!(s.executions(), 6);
        assert_eq!(s.taken(), 3);
        assert_eq!(s.not_taken(), 3);
        assert_eq!(s.transitions(), 3);
        assert_eq!(s.taken_fraction(), Some(0.5));
        assert_eq!(s.transition_fraction(), Some(0.5));
        assert_eq!(s.last_outcome(), Some(Outcome::NotTaken));
    }

    #[test]
    fn first_execution_is_never_a_transition() {
        let mut s = AddrStats::new();
        s.observe(Outcome::Taken);
        assert_eq!(s.executions(), 1);
        assert_eq!(s.transitions(), 0);
        assert_eq!(s.transition_fraction(), Some(0.0));
    }

    #[test]
    fn perfectly_alternating_branch_has_max_transition_rate() {
        let mut s = AddrStats::new();
        for i in 0..100u32 {
            s.observe(Outcome::from_bool(i % 2 == 0));
        }
        assert_eq!(s.executions(), 100);
        assert_eq!(s.transitions(), 99);
        let tf = s.transition_fraction().unwrap();
        assert!(tf > 0.98 && tf <= 1.0);
    }

    #[test]
    fn always_taken_branch_has_zero_transitions() {
        let mut s = AddrStats::new();
        for _ in 0..50 {
            s.observe(Outcome::Taken);
        }
        assert_eq!(s.taken_fraction(), Some(1.0));
        assert_eq!(s.transitions(), 0);
    }

    #[test]
    fn empty_stats_have_no_fractions() {
        let s = AddrStats::new();
        assert_eq!(s.taken_fraction(), None);
        assert_eq!(s.transition_fraction(), None);
        assert_eq!(s.last_outcome(), None);
    }

    #[test]
    fn trace_stats_partition_by_kind_and_address() {
        let mut ts = TraceStats::new();
        ts.observe(&rec(0x10, true));
        ts.observe(&rec(0x10, false));
        ts.observe(&rec(0x20, true));
        ts.observe(&BranchRecord::new(
            BranchAddr::new(0x30),
            BranchKind::Call,
            Outcome::Taken,
        ));
        assert_eq!(ts.total_conditional(), 3);
        assert_eq!(ts.total_other(), 1);
        assert_eq!(ts.static_conditional_count(), 2);
        assert_eq!(ts.total_taken(), 2);
        assert_eq!(ts.total_transitions(), 1);
        assert_eq!(ts.addr(BranchAddr::new(0x10)).unwrap().executions(), 2);
        assert!(ts.addr(BranchAddr::new(0x30)).is_none());
        assert!((ts.overall_taken_fraction().unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn hottest_branch_finds_the_most_executed_address() {
        let mut ts = TraceStats::new();
        for _ in 0..5 {
            ts.observe(&rec(0x40, true));
        }
        ts.observe(&rec(0x80, false));
        let (addr, stats) = ts.hottest_branch().unwrap();
        assert_eq!(addr, BranchAddr::new(0x40));
        assert_eq!(stats.executions(), 5);
    }

    #[test]
    fn merge_accumulates_counts() {
        let mut a = TraceStats::new();
        a.observe(&rec(0x10, true));
        let mut b = TraceStats::new();
        b.observe(&rec(0x10, false));
        b.observe(&rec(0x20, true));
        a.merge(&b);
        assert_eq!(a.total_conditional(), 3);
        assert_eq!(a.static_conditional_count(), 2);
        assert_eq!(a.addr(BranchAddr::new(0x10)).unwrap().executions(), 2);
    }

    #[test]
    fn empty_trace_stats_queries() {
        let ts = TraceStats::new();
        assert_eq!(ts.overall_taken_fraction(), None);
        assert!(ts.hottest_branch().is_none());
        assert_eq!(ts.static_conditional_count(), 0);
    }
}
