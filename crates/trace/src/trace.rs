//! In-memory branch traces and their builder.

use crate::record::{BranchKind, BranchRecord};
use crate::stats::TraceStats;
use std::fmt;

/// Descriptive metadata attached to a trace.
///
/// Mirrors the columns of the paper's Table 1: the benchmark name and the
/// input set the trace corresponds to, plus a free-form description and the
/// generator seed when the trace is synthetic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceMetadata {
    /// Benchmark name (e.g. `"gcc"`).
    pub benchmark: String,
    /// Input set identifier (e.g. `"amptjp.i"`).
    pub input_set: String,
    /// Free-form description.
    pub description: String,
    /// Seed used to generate the trace, when synthetic.
    pub seed: Option<u64>,
}

impl TraceMetadata {
    /// Creates metadata with just a benchmark name.
    pub fn named(benchmark: impl Into<String>) -> Self {
        TraceMetadata {
            benchmark: benchmark.into(),
            ..TraceMetadata::default()
        }
    }

    /// Sets the input-set field, builder style.
    #[must_use]
    pub fn with_input_set(mut self, input: impl Into<String>) -> Self {
        self.input_set = input.into();
        self
    }

    /// Sets the seed field, builder style.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// A short label of the form `benchmark(input_set)` used in reports.
    pub fn label(&self) -> String {
        if self.input_set.is_empty() {
            self.benchmark.clone()
        } else {
            format!("{}({})", self.benchmark, self.input_set)
        }
    }
}

/// An immutable, in-memory sequence of dynamic branch executions.
///
/// A `Trace` owns its records and caches the raw per-address statistics
/// computed while it was built, so repeated analyses do not re-scan the
/// record vector. The conditional-record subset — the stream every predictor
/// simulation consumes — is available as a contiguous slice
/// ([`Trace::conditional_records`]), so a 17-point history sweep filters the
/// record kinds once instead of once per sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    metadata: TraceMetadata,
    records: Vec<BranchRecord>,
    /// Cached conditional subset, only materialized for traces that contain
    /// non-conditional records; all-conditional traces (every synthetic
    /// workload) borrow `records` directly so memory never doubles at
    /// paper scale. Invariant: empty iff `stats.total_other() == 0`.
    ///
    /// Derived data, excluded from serialization: any future wire decoding
    /// must recompute this via [`conditional_subset`] (e.g. route decoding
    /// through [`Trace::from_records`]) rather than trust wire data.
    conditional: Vec<BranchRecord>,
    stats: TraceStats,
}

/// Builds the materialized conditional subset for a mixed record vector, or
/// an empty vector when every record is conditional (the borrow-`records`
/// fast path).
fn conditional_subset(records: &[BranchRecord], stats: &TraceStats) -> Vec<BranchRecord> {
    if stats.total_other() == 0 {
        Vec::new()
    } else {
        records
            .iter()
            .copied()
            .filter(|r| r.kind().is_conditional())
            .collect()
    }
}

/// Incremental-append step for the lazy conditional cache. Must run after
/// `stats.observe(record)` and before `records.push(record)`: the first
/// non-conditional record materializes the cache from the (all-conditional)
/// records so far; afterwards every conditional record is appended.
fn push_to_conditional_cache(
    conditional: &mut Vec<BranchRecord>,
    records: &[BranchRecord],
    stats: &TraceStats,
    record: &BranchRecord,
) {
    if record.kind().is_conditional() {
        if stats.total_other() > 0 {
            conditional.push(*record);
        }
    } else if stats.total_other() == 1 {
        *conditional = records.to_vec();
    }
}

impl Trace {
    /// Builds a trace directly from records, computing statistics eagerly.
    pub fn from_records(metadata: TraceMetadata, records: Vec<BranchRecord>) -> Self {
        let mut stats = TraceStats::new();
        for r in &records {
            stats.observe(r);
        }
        let conditional = conditional_subset(&records, &stats);
        Trace {
            metadata,
            records,
            conditional,
            stats,
        }
    }

    /// The trace metadata.
    pub fn metadata(&self) -> &TraceMetadata {
        &self.metadata
    }

    /// The number of records (of any kind) in the trace.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if the trace contains no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records as a slice.
    pub fn records(&self) -> &[BranchRecord] {
        &self.records
    }

    /// The conditional records as a precomputed contiguous slice, in trace
    /// order — the stream predictor simulations iterate. For all-conditional
    /// traces this is the record vector itself (no copy is held).
    pub fn conditional_records(&self) -> &[BranchRecord] {
        if self.stats.total_other() == 0 {
            &self.records
        } else {
            &self.conditional
        }
    }

    /// Interns the conditional-branch stream: every static branch gets a
    /// dense `u32` id so per-branch simulation state can live in flat vectors
    /// instead of address-keyed maps (see [`crate::interned::InternedTrace`]).
    pub fn intern(&self) -> crate::interned::InternedTrace {
        crate::interned::InternedTrace::from_conditional_records(self.conditional_records())
    }

    /// Iterates over the records.
    pub fn iter(&self) -> std::slice::Iter<'_, BranchRecord> {
        self.records.iter()
    }

    /// The raw statistics accumulated over the whole trace.
    pub fn stats(&self) -> &TraceStats {
        &self.stats
    }

    /// The number of conditional-branch records.
    pub fn conditional_count(&self) -> u64 {
        self.stats.total_conditional()
    }

    /// The number of distinct static conditional branches.
    pub fn static_conditional_count(&self) -> usize {
        self.stats.static_conditional_count()
    }

    /// Counts records of a particular kind.
    pub fn count_kind(&self, kind: BranchKind) -> u64 {
        self.records.iter().filter(|r| r.kind() == kind).count() as u64
    }

    /// Consumes the trace and returns its record vector.
    pub fn into_records(self) -> Vec<BranchRecord> {
        self.records
    }

    /// Concatenates another trace onto this one, recomputing statistics for
    /// the appended records only.
    pub fn extend_from(&mut self, other: &Trace) {
        for r in other.records() {
            self.stats.observe(r);
            push_to_conditional_cache(&mut self.conditional, &self.records, &self.stats, r);
            self.records.push(*r);
        }
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace {} [{} records, {} conditional, {} static branches]",
            self.metadata.label(),
            self.len(),
            self.conditional_count(),
            self.static_conditional_count()
        )
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a BranchRecord;
    type IntoIter = std::slice::Iter<'a, BranchRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

impl IntoIterator for Trace {
    type Item = BranchRecord;
    type IntoIter = std::vec::IntoIter<BranchRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.into_iter()
    }
}

/// Incremental builder for [`Trace`], maintaining statistics as records are
/// appended.
///
/// ```
/// use btr_trace::{BranchAddr, BranchRecord, Outcome, TraceBuilder};
/// let mut b = TraceBuilder::new("compress").with_input_set("bigtest.in");
/// b.push(BranchRecord::conditional(BranchAddr::new(0x40), Outcome::Taken));
/// let t = b.build();
/// assert_eq!(t.metadata().benchmark, "compress");
/// assert_eq!(t.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceBuilder {
    metadata: TraceMetadata,
    records: Vec<BranchRecord>,
    conditional: Vec<BranchRecord>,
    stats: TraceStats,
}

impl TraceBuilder {
    /// Creates a builder with the given benchmark name.
    pub fn new(benchmark: impl Into<String>) -> Self {
        TraceBuilder::with_metadata(TraceMetadata::named(benchmark))
    }

    /// Creates a builder with full metadata.
    pub fn with_metadata(metadata: TraceMetadata) -> Self {
        TraceBuilder {
            metadata,
            records: Vec::new(),
            conditional: Vec::new(),
            stats: TraceStats::new(),
        }
    }

    /// Sets the input-set metadata field.
    #[must_use]
    pub fn with_input_set(mut self, input: impl Into<String>) -> Self {
        self.metadata.input_set = input.into();
        self
    }

    /// Sets the seed metadata field.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.metadata.seed = Some(seed);
        self
    }

    /// Reserves capacity for `additional` more records.
    pub fn reserve(&mut self, additional: usize) {
        self.records.reserve(additional);
    }

    /// Appends a record.
    pub fn push(&mut self, record: BranchRecord) -> &mut Self {
        self.stats.observe(&record);
        push_to_conditional_cache(&mut self.conditional, &self.records, &self.stats, &record);
        self.records.push(record);
        self
    }

    /// Appends every record from an iterator.
    pub fn extend<I: IntoIterator<Item = BranchRecord>>(&mut self, records: I) -> &mut Self {
        for r in records {
            self.push(r);
        }
        self
    }

    /// Number of records pushed so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if no records have been pushed.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Finalizes the builder into an immutable [`Trace`].
    pub fn build(self) -> Trace {
        Trace {
            metadata: self.metadata,
            records: self.records,
            conditional: self.conditional,
            stats: self.stats,
        }
    }
}

impl Extend<BranchRecord> for TraceBuilder {
    fn extend<T: IntoIterator<Item = BranchRecord>>(&mut self, iter: T) {
        TraceBuilder::extend(self, iter);
    }
}

impl FromIterator<BranchRecord> for Trace {
    fn from_iter<T: IntoIterator<Item = BranchRecord>>(iter: T) -> Self {
        let mut b = TraceBuilder::new("anonymous");
        b.extend(iter);
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{BranchAddr, Outcome};

    fn rec(addr: u64, taken: bool) -> BranchRecord {
        BranchRecord::conditional(BranchAddr::new(addr), Outcome::from_bool(taken))
    }

    #[test]
    fn builder_and_from_records_agree() {
        let records = vec![rec(0x10, true), rec(0x10, false), rec(0x20, true)];
        let mut b = TraceBuilder::new("t");
        b.extend(records.clone());
        let via_builder = b.build();
        let via_records = Trace::from_records(TraceMetadata::named("t"), records);
        assert_eq!(via_builder.stats(), via_records.stats());
        assert_eq!(via_builder.records(), via_records.records());
    }

    #[test]
    fn metadata_label_formats() {
        let m = TraceMetadata::named("gcc")
            .with_input_set("cccp.i")
            .with_seed(7);
        assert_eq!(m.label(), "gcc(cccp.i)");
        assert_eq!(m.seed, Some(7));
        assert_eq!(TraceMetadata::named("go").label(), "go");
    }

    #[test]
    fn trace_counters_track_kinds() {
        let mut b = TraceBuilder::new("mix");
        b.push(rec(0x10, true));
        b.push(BranchRecord::new(
            BranchAddr::new(0x14),
            BranchKind::Call,
            Outcome::Taken,
        ));
        b.push(BranchRecord::new(
            BranchAddr::new(0x18),
            BranchKind::Return,
            Outcome::Taken,
        ));
        let t = b.build();
        assert_eq!(t.len(), 3);
        assert_eq!(t.conditional_count(), 1);
        assert_eq!(t.count_kind(BranchKind::Call), 1);
        assert_eq!(t.count_kind(BranchKind::Return), 1);
        assert_eq!(t.count_kind(BranchKind::Indirect), 0);
        assert_eq!(t.static_conditional_count(), 1);
    }

    #[test]
    fn extend_from_merges_statistics() {
        let a = Trace::from_records(TraceMetadata::named("a"), vec![rec(0x10, true)]);
        let b = Trace::from_records(
            TraceMetadata::named("b"),
            vec![rec(0x10, false), rec(0x20, true)],
        );
        let mut merged = a.clone();
        merged.extend_from(&b);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged.conditional_count(), 3);
        assert_eq!(merged.static_conditional_count(), 2);
    }

    #[test]
    fn iteration_and_display() {
        let t: Trace = vec![rec(0x10, true), rec(0x14, false)]
            .into_iter()
            .collect();
        assert_eq!(t.iter().count(), 2);
        assert_eq!((&t).into_iter().count(), 2);
        let s = t.to_string();
        assert!(s.contains("2 records"));
        let owned: Vec<_> = t.into_iter().collect();
        assert_eq!(owned.len(), 2);
    }

    #[test]
    fn conditional_cache_is_lazy_for_all_conditional_traces() {
        // All-conditional: the subset is the record vector itself, no copy.
        let t: Trace = vec![rec(0x10, true), rec(0x20, false)]
            .into_iter()
            .collect();
        assert_eq!(t.conditional_records().as_ptr(), t.records().as_ptr());
        assert_eq!(t.conditional_records().len(), 2);

        // First non-conditional record materializes the subset (builder path).
        let mut b = TraceBuilder::new("mixed");
        b.push(rec(0x10, true));
        b.push(BranchRecord::new(
            BranchAddr::new(0x14),
            BranchKind::Call,
            Outcome::Taken,
        ));
        b.push(rec(0x18, false));
        let mixed = b.build();
        assert_ne!(
            mixed.conditional_records().as_ptr(),
            mixed.records().as_ptr()
        );
        assert_eq!(
            mixed.conditional_records(),
            &[rec(0x10, true), rec(0x18, false)]
        );

        // extend_from: appending a mixed trace onto an all-conditional one
        // materializes mid-stream and keeps the subset consistent.
        let mut grown: Trace = vec![rec(0x30, true)].into_iter().collect();
        grown.extend_from(&mixed);
        assert_eq!(
            grown.conditional_records(),
            &[rec(0x30, true), rec(0x10, true), rec(0x18, false)]
        );
        // And all-conditional extension keeps the zero-copy representation.
        let mut still_pure: Trace = vec![rec(0x40, true)].into_iter().collect();
        let more: Trace = vec![rec(0x50, false)].into_iter().collect();
        still_pure.extend_from(&more);
        assert_eq!(
            still_pure.conditional_records().as_ptr(),
            still_pure.records().as_ptr()
        );
    }

    #[test]
    fn empty_trace_is_empty() {
        let t = TraceBuilder::new("empty").build();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.conditional_count(), 0);
    }
}
