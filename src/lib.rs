//! # btr — Branch Transition Rate analysis toolkit
//!
//! Facade crate for the reproduction of *"Branch Transition Rate: A New
//! Metric for Improved Branch Classification Analysis"* (Haungs, Sallee,
//! Farrens — HPCA 2000).
//!
//! The workspace is organised as a set of focused crates, all re-exported
//! here for convenience:
//!
//! * [`trace`] — branch trace records, traces, serialization and statistics.
//! * [`workloads`] — synthetic SPECint95-like workload generation.
//! * [`predictors`] — two-level adaptive predictors (PAs, GAs, gshare, …),
//!   hybrids and confidence estimators.
//! * [`core`] — the paper's contribution: taken-rate / transition-rate
//!   classification and the analyses built on it.
//! * [`sim`] — the trace-driven simulation harness and per-figure experiment
//!   definitions.
//! * [`wire`] — the JSON and `BTRW` wire formats every analysis artifact
//!   serialises through.
//!
//! ## Quickstart
//!
//! ```
//! use btr::prelude::*;
//!
//! // Generate a small synthetic benchmark trace.
//! let suite = SuiteConfig::default().with_scale(1e-6).with_seed(7);
//! let trace = Benchmark::compress().generate(&suite);
//!
//! // Profile it and classify every static branch.
//! let profile = ProgramProfile::from_trace(&trace);
//! let table = JointClassTable::from_profile(&profile, BinningScheme::Paper11);
//! assert!(table.total_percentage() > 99.0);
//! ```

#![forbid(unsafe_code)]

pub use btr_core as core;
pub use btr_predictors as predictors;
pub use btr_sim as sim;
pub use btr_trace as trace;
pub use btr_wire as wire;
pub use btr_workloads as workloads;

/// Commonly used items, re-exported for ergonomic `use btr::prelude::*;`.
pub mod prelude {
    pub use btr_core::{
        analysis::ClassificationAnalysis, class::BinningScheme, class::ClassId,
        distribution::ClassDistribution, joint::JointClassTable, profile::BranchProfile,
        profile::ProgramProfile, rates::TakenRate, rates::TransitionRate,
    };
    pub use btr_predictors::{
        predictor::BranchPredictor, twolevel::TwoLevelConfig, twolevel::TwoLevelPredictor,
    };
    pub use btr_sim::{config::PredictorKind, config::SimConfig, engine::SimEngine};
    pub use btr_trace::{BranchAddr, BranchKind, BranchRecord, Outcome, Trace, TraceBuilder};
    pub use btr_wire::Wire;
    pub use btr_workloads::{spec::Benchmark, spec::SuiteConfig};
}
