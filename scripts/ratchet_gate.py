#!/usr/bin/env python3
"""Ratchet gate: reconcile btr-analyzer findings against the baseline file.

`cargo run -p btr-analyzer -- check --json FINDINGS.json` already exits
nonzero on unratcheted findings; this script is the independent second
opinion CI runs on the emitted artifact, with no Rust in the loop. It
re-parses `analyzer-ratchet.toml` with its own reader, re-counts the
report's per-`file#category` panic-path sites, prints an aligned debt table,
and fails when

* any unratcheted finding appears in the report,
* any ratcheted `[panic-path]` count in the report exceeds its baseline
  (debt may only fall), or
* the report totals disagree with the findings list (a tampered or
  truncated artifact).

Usage: ratchet_gate.py RATCHET.toml FINDINGS.json
"""

import argparse
import json
import sys


def parse_ratchet(path):
    """Parses the analyzer's TOML subset: [section] headers, # comments and
    `"file#category" = count` entries. Mirrors crates/analyzer/src/config.rs;
    anything that parser rejects is rejected here too."""
    sections = {}
    current = None
    with open(path, encoding="utf-8") as fh:
        for line_no, raw in enumerate(fh, 1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if line.startswith("[") and line.endswith("]"):
                current = line[1:-1].strip()
                sections.setdefault(current, {})
                continue
            if "=" not in line or current is None:
                raise SystemExit(f"{path}:{line_no}: malformed line: {line!r}")
            key, _, value = line.partition("=")
            key = key.strip().strip('"')
            entries = sections[current]
            if key in entries:
                raise SystemExit(f"{path}:{line_no}: duplicate key {key!r}")
            try:
                entries[key] = int(value.strip())
            except ValueError:
                raise SystemExit(f"{path}:{line_no}: non-integer count: {line!r}")
    return sections


def print_table(rows):
    """Prints an aligned per-key debt table of (key, baseline, current, status)."""
    headers = ("file#category", "baseline", "current", "status")
    rendered = [
        (key, str(old) if old is not None else "-", str(new), status)
        for key, old, new, status in rows
    ]
    widths = [
        max(len(headers[col]), max((len(r[col]) for r in rendered), default=0))
        for col in range(len(headers))
    ]

    def line(cells):
        out = [cells[0].ljust(widths[0])]
        out += [cells[col].rjust(widths[col]) for col in range(1, len(cells))]
        return "  " + "  ".join(out)

    print(line(headers))
    print(line(tuple("-" * w for w in widths)))
    for row in rendered:
        print(line(row))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("ratchet", help="analyzer-ratchet.toml")
    parser.add_argument("findings", help="findings JSON emitted by check --json")
    args = parser.parse_args()

    baseline = parse_ratchet(args.ratchet).get("panic-path", {})
    with open(args.findings, encoding="utf-8") as fh:
        report = json.load(fh)

    failures = []

    # Independent total cross-checks against the findings list.
    findings = report.get("findings", [])
    if report.get("total") != len(findings):
        failures.append(f"report total {report.get('total')} != {len(findings)} findings")
    unratcheted = [f for f in findings if not f.get("ratcheted")]
    if report.get("unratcheted") != len(unratcheted):
        failures.append(
            f"report unratcheted {report.get('unratcheted')} != "
            f"{len(unratcheted)} unratcheted findings"
        )

    for finding in unratcheted:
        failures.append(
            f"{finding.get('file')}:{finding.get('line')}: "
            f"[{finding.get('pass')}/{finding.get('category')}] {finding.get('message')}"
        )

    # The ratchet direction: current panic-path debt must not exceed baseline.
    current = {k: int(v) for k, v in report.get("ratchet_counts", {}).items()}
    rows = []
    for key in sorted(set(baseline) | set(current)):
        old = baseline.get(key)
        new = current.get(key, 0)
        if old is None:
            status = "NEW"  # already failed above via an unratcheted finding
        elif new > old:
            status = "GREW"
            failures.append(f"{key}: debt grew {old} -> {new} (ratchet only goes down)")
        elif new < old:
            status = "SHRANK"  # informational: run `btr-analyzer ratchet` to lock in
        else:
            status = "OK"
        rows.append((key, old, new, status))
    print_table(rows)

    debt = sum(current.values())
    if failures:
        print(f"\ngate: {len(failures)} failure(s):")
        for failure in failures:
            print(f"  {failure}")
        return 1
    shrunk = sum(1 for _, old, new, _ in rows if old is not None and new < old)
    note = f"; {shrunk} entries shrank — run `btr-analyzer ratchet` to lock in" if shrunk else ""
    print(f"\ngate: clean — {debt} ratcheted panic-path sites, 0 new findings{note}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
