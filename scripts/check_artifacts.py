#!/usr/bin/env python3
"""Validate `reproduce --out-dir` artifacts.

For every experiment the directory must hold a `.txt` (ASCII rendering),
`.json` (pretty JSON) and `.btrw` (binary) artifact. This checker:

1. parses every JSON artifact with Python's own parser (an implementation
   independent of the Rust writer);
2. decodes every BTRW artifact with the independent decoder below and checks
   it carries the *same* value tree as the JSON (BTRW `u64` sequences read
   back as plain lists, matching JSON's single array syntax);
3. cross-checks row counts between the structured data and the ASCII tables,
   per experiment kind, so a figure whose machine-readable artifact silently
   dropped rows fails CI.

Usage: check_artifacts.py ARTIFACT_DIR
"""

import json
import struct
import sys
from pathlib import Path

MAGIC = b"BTRW"
VERSION = 1

EXPECTED_EXPERIMENTS = [
    "table1",
    "table2",
    *[f"fig{i}" for i in range(1, 16)],
    "ablation-binning",
    "ablation-hybrid",
    "ablation-confidence",
]


class Reader:
    """Cursor over a BTRW byte string."""

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise ValueError(f"truncated at byte {self.pos}")
        out = self.data[self.pos : self.pos + n]
        self.pos += n
        return out

    def varint(self) -> int:
        value, shift = 0, 0
        while True:
            byte = self.take(1)[0]
            payload = byte & 0x7F
            # Canonical varints only, mirroring the Rust reader: at most 64
            # bits of payload, no trailing zero byte.
            if shift == 63 and payload > 1:
                raise ValueError("varint overflows 64 bits")
            value |= payload << shift
            if not byte & 0x80:
                if payload == 0 and shift > 0:
                    raise ValueError("non-minimal varint")
                return value
            shift += 7
            if shift >= 64:
                raise ValueError("varint longer than 64 bits")


def zigzag_decode(v: int) -> int:
    return (v >> 1) ^ -(v & 1)


def read_value(r: Reader):
    tag = r.take(1)[0]
    if tag == 0:
        return None
    if tag == 1:
        return False
    if tag == 2:
        return True
    if tag == 3:
        return r.varint()
    if tag == 4:
        return zigzag_decode(r.varint())
    if tag == 5:
        return struct.unpack("<d", r.take(8))[0]
    if tag == 6:
        return r.take(r.varint()).decode("utf-8")
    if tag == 7:
        return [read_value(r) for _ in range(r.varint())]
    if tag == 8:
        return {r.take(r.varint()).decode("utf-8"): read_value(r) for _ in range(r.varint())}
    if tag == 9:
        count, prev, out = r.varint(), 0, []
        for _ in range(count):
            prev = (prev + zigzag_decode(r.varint())) % (1 << 64)
            out.append(prev)
        return out
    raise ValueError(f"unknown tag {tag}")


def read_btrw(data: bytes):
    r = Reader(data)
    if r.take(4) != MAGIC:
        raise ValueError("bad magic")
    version = struct.unpack("<I", r.take(4))[0]
    if version != VERSION:
        raise ValueError(f"unsupported version {version}")
    value = read_value(r)
    if r.pos != len(data):
        raise ValueError(f"{len(data) - r.pos} trailing bytes")
    return value


def ascii_table_rows(text: str) -> int:
    """Number of data rows below the dashed separator of an ASCII table
    (stopping at the first blank line, where trailing commentary begins)."""
    lines = text.rstrip("\n").split("\n")
    for i, line in enumerate(lines):
        if line and set(line) == {"-"}:
            rows = 0
            for row in lines[i + 1 :]:
                if not row.strip():
                    break
                rows += 1
            return rows
    raise ValueError("no ASCII table separator found")


def class_count(scheme: str) -> int:
    if scheme == "paper-11":
        return 11
    if scheme == "chang-6":
        return 6
    if scheme.startswith("uniform-"):
        return int(scheme.split("-", 1)[1])
    raise ValueError(f"unknown scheme {scheme!r}")


def check_rows(name: str, data: dict, text: str):
    """Cross-checks the JSON row counts against the ASCII rendering."""
    if name == "table1" or name == "fig15" or name.startswith("ablation-"):
        expected = len(data["rows"])
        actual = ascii_table_rows(text)
        assert actual == expected, f"{name}: ASCII has {actual} rows, JSON {expected}"
    elif name == "table2":
        n = class_count(data["table"]["scheme"])
        assert len(data["table"]["counts"]) == n, f"{name}: count grid is not {n} rows"
        assert all(len(row) == n for row in data["table"]["counts"])
        # The ASCII table appends a totals row below the class rows.
        actual = ascii_table_rows(text)
        assert actual == n + 1, f"{name}: ASCII has {actual} rows, expected {n + 1}"
    elif name in ("fig1", "fig2"):
        n = class_count(data["distribution"]["scheme"])
        assert len(data["distribution"]["counts"]) == n
        bars = sum(1 for line in text.split("\n") if "|" in line)
        assert bars == n, f"{name}: ASCII has {bars} bars, expected {n}"
    elif name in ("fig3", "fig4"):
        n = class_count(data["pas"]["scheme"])
        assert len(data["pas"]["rates"]) == n
        assert len(data["gas"]["rates"]) == n
        actual = ascii_table_rows(text)
        assert actual == n, f"{name}: ASCII has {actual} rows, expected {n}"
    elif name in (f"fig{i}" for i in range(5, 13)):
        histories = data["matrix"]["history_lengths"]
        assert len(data["matrix"]["rates"]) == class_count(data["matrix"]["scheme"])
        assert all(len(row) == len(histories) for row in data["matrix"]["rates"])
        actual = ascii_table_rows(text)
        assert actual == len(histories), (
            f"{name}: ASCII has {actual} rows, expected {len(histories)}"
        )
    elif name in ("fig13", "fig14"):
        n = class_count(data["matrix"]["scheme"])
        assert len(data["matrix"]["rates"]) == n
        shaded = sum(1 for line in text.split("\n") if line.startswith("tr "))
        assert shaded == n, f"{name}: ASCII has {shaded} colormap rows, expected {n}"
    else:
        raise ValueError(f"no row-count rule for experiment {name!r}")


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    directory = Path(sys.argv[1])
    failures = 0
    for name in EXPECTED_EXPERIMENTS:
        try:
            text = (directory / f"{name}.txt").read_text()
            data = json.loads((directory / f"{name}.json").read_text())
            binary = read_btrw((directory / f"{name}.btrw").read_bytes())
            assert data == binary, f"{name}: JSON and BTRW artifacts disagree"
            assert data["experiment"] == name, f"{name}: envelope names {data['experiment']!r}"
            check_rows(name, data, text)
            print(f"ok    {name}")
        except Exception as exc:  # noqa: BLE001 — report every failure
            print(f"FAIL  {name}: {exc}")
            failures += 1
    if failures:
        print(f"{failures} artifact check(s) failed", file=sys.stderr)
        return 1
    print(f"all {len(EXPECTED_EXPERIMENTS)} artifacts consistent")
    return 0


if __name__ == "__main__":
    sys.exit(main())
