#!/usr/bin/env python3
"""Serve smoke gate: the release `btrd` daemon must survive the full
`btrd-load --smoke` scenario suite on an ephemeral port.

Drill, against the release binaries:

1. `btrd` is started on `127.0.0.1:0` with a deliberately small upload
   limit; its `btrd listening on HOST:PORT` stdout line yields the port.
2. `btrd-load --smoke` drives the acceptance scenarios over real sockets:
   streamed BTRT and text classify, the fused history sweep in JSON and
   BTRW, content-addressed cache replay by digest, oversized/truncated/
   garbage/malformed uploads answered with their typed 4xx, 404/405
   routing, a concurrent burst (200s or clean 503s, never hangs), and a
   `/metrics` document that decodes through the wire layer and reflects
   the traffic.
3. The daemon must still be alive afterwards (no crash absorbed a
   scenario), then shut down cleanly on SIGTERM.

Usage: serve_smoke.py [--btrd target/release/btrd]
                      [--load target/release/btrd-load]
"""

import argparse
import re
import signal
import subprocess
import sys
import time

UPLOAD_LIMIT = 1 << 20  # 1 MiB: small enough to trip the 413 scenario fast.


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--btrd", default="target/release/btrd")
    parser.add_argument("--load", default="target/release/btrd-load")
    args = parser.parse_args()

    cmd = [
        args.btrd,
        "--addr", "127.0.0.1:0",
        "--max-upload-bytes", str(UPLOAD_LIMIT),
        "--timeout-ms", "10000",
    ]
    print(f"$ {' '.join(cmd)}")
    daemon = subprocess.Popen(cmd, stdout=subprocess.PIPE, text=True)
    try:
        line = daemon.stdout.readline()
        print(line.rstrip())
        match = re.search(r"btrd listening on (\S+)", line)
        if not match:
            sys.exit(f"FAIL: btrd did not announce its address: {line!r}")
        addr = match.group(1)

        load_cmd = [
            args.load,
            "--addr", addr,
            "--smoke",
            "--upload-limit", str(UPLOAD_LIMIT),
            "--records", "50000",
        ]
        print(f"$ {' '.join(load_cmd)}")
        load = subprocess.run(load_cmd)
        if load.returncode != 0:
            sys.exit(f"FAIL: btrd-load --smoke exited {load.returncode}")

        if daemon.poll() is not None:
            sys.exit(f"FAIL: btrd died during the suite (exit {daemon.returncode})")

        daemon.send_signal(signal.SIGTERM)
        deadline = time.monotonic() + 10
        while daemon.poll() is None and time.monotonic() < deadline:
            time.sleep(0.05)
        if daemon.poll() is None:
            sys.exit("FAIL: btrd ignored SIGTERM for 10s")
        print("serve smoke: PASS")
    finally:
        if daemon.poll() is None:
            daemon.kill()


if __name__ == "__main__":
    main()
