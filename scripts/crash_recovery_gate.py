#!/usr/bin/env python3
"""Crash-recovery gate: a sharded sweep must survive injected faults, a
graceful interruption, AND a hard-killed coordinator — and still produce a
final artifact byte-identical to the unsharded sequential reference.

Drill, against the release `btr-shard`/`btr-shard-worker` binaries:

1. `btr-shard sequential` writes the reference `final.btrw`.
2. `btr-shard run` under a `BTR_FAULT` plan that injects one fault (crash
   before/after commit, torn write, corrupt checkpoint, or stall) into every
   unit's first attempt, with `--max-commits 3`: the coordinator must stop
   with exit code 3 after three checkpoints, leaving no final artifact.
3. `btr-shard resume` is started and then SIGKILLed as soon as it commits
   another checkpoint — the hard coordinator crash. Workers it spawned may
   die mid-unit or commit behind its back; both must be survivable.
4. A final `btr-shard resume` must finish the sweep (exit 0) and its
   `final.btrw` must equal the sequential reference byte for byte.

Usage: crash_recovery_gate.py [--shard target/release/btr-shard]
                              [--work-dir DIR] [--keep]
"""

import argparse
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time

# One fault on every unit's first attempt, drawn from all five kinds; the
# 60 s stall forces the coordinator's straggler deadline to do the killing.
FAULT_PLAN = "seed=42,percent=100,max=1,stall-ms=60000"

SPEC = [
    "--family", "pas",
    "--histories", "0,2,4,8",
    "--benchmarks", "compress,li",
    "--scale", "1e-6",
    "--group", "2",
    "--windows", "2",
]

SCHEDULING = [
    "--workers", "2",
    "--deadline-ms", "2500",
    "--backoff-base-ms", "5",
    "--backoff-cap-ms", "50",
]


def run(cmd, env=None, check_code=None):
    """Runs a command, echoing it; asserts on the exit code when asked."""
    print(f"$ {' '.join(cmd)}")
    proc = subprocess.run(cmd, env=env)
    if check_code is not None and proc.returncode != check_code:
        sys.exit(f"FAIL: expected exit code {check_code}, got {proc.returncode}")
    return proc.returncode


def committed_partials(out_dir):
    partials = os.path.join(out_dir, "partials")
    if not os.path.isdir(partials):
        return 0
    return sum(
        1
        for name in os.listdir(partials)
        if name.startswith("unit-") and name.endswith(".btrw")
    )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shard", default="target/release/btr-shard",
                        help="path of the btr-shard binary (worker is its sibling)")
    parser.add_argument("--work-dir", default=None,
                        help="working directory (default: a fresh temp dir)")
    parser.add_argument("--keep", action="store_true",
                        help="keep the working directory for inspection")
    args = parser.parse_args()

    if not os.path.exists(args.shard):
        sys.exit(f"FAIL: {args.shard} not found (cargo build --release -p btr-shard)")
    work = args.work_dir or tempfile.mkdtemp(prefix="crash-recovery-")
    os.makedirs(work, exist_ok=True)
    seq_dir = os.path.join(work, "sequential")
    shard_dir = os.path.join(work, "sharded")
    shutil.rmtree(seq_dir, ignore_errors=True)
    shutil.rmtree(shard_dir, ignore_errors=True)

    faulted_env = dict(os.environ, BTR_FAULT=FAULT_PLAN)

    # 1. The unsharded reference.
    run([args.shard, "sequential", seq_dir] + SPEC, check_code=0)
    reference = open(os.path.join(seq_dir, "final.btrw"), "rb").read()
    print(f"sequential reference: {len(reference)} bytes")

    # 2. Faulted run, gracefully interrupted after 3 commits (exit code 3).
    run([args.shard, "run", shard_dir] + SPEC + SCHEDULING + ["--max-commits", "3"],
        env=faulted_env, check_code=3)
    if os.path.exists(os.path.join(shard_dir, "final.btrw")):
        sys.exit("FAIL: interrupted run must not write a final artifact")
    after_interrupt = committed_partials(shard_dir)
    print(f"interrupted with {after_interrupt} committed checkpoints")
    if after_interrupt < 3:
        sys.exit("FAIL: expected at least the 3 quota'd checkpoints on disk")

    # 3. Resume, then SIGKILL the coordinator once it commits more work —
    #    the hard crash. (If it wins the race and finishes first, that is
    #    also a valid outcome; the next resume is then a no-op merge.)
    print(f"$ {args.shard} resume {shard_dir} ...  # then SIGKILL")
    proc = subprocess.Popen([args.shard, "resume", shard_dir] + SCHEDULING,
                            env=faulted_env)
    deadline = time.time() + 120
    while time.time() < deadline:
        if proc.poll() is not None:
            break
        if committed_partials(shard_dir) > after_interrupt:
            proc.send_signal(signal.SIGKILL)
            proc.wait()
            break
        time.sleep(0.05)
    else:
        proc.kill()
        proc.wait()
        sys.exit("FAIL: resume made no progress within 120 s")
    print(f"coordinator stopped (returncode {proc.returncode}) "
          f"with {committed_partials(shard_dir)} checkpoints on disk")

    # 4. Final resume finishes the sweep; its artifact must be byte-identical.
    run([args.shard, "resume", shard_dir] + SCHEDULING, env=faulted_env,
        check_code=0)
    merged = open(os.path.join(shard_dir, "final.btrw"), "rb").read()
    if merged != reference:
        sys.exit(f"FAIL: sharded final.btrw ({len(merged)} bytes) differs "
                 f"from the sequential reference ({len(reference)} bytes)")
    print(f"OK: sharded result is byte-identical to the sequential reference "
          f"({len(merged)} bytes) after faults, interruption and a killed "
          f"coordinator")
    if not args.keep and args.work_dir is None:
        shutil.rmtree(work, ignore_errors=True)


if __name__ == "__main__":
    main()
