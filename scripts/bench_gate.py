#!/usr/bin/env python3
"""Bench regression gate: diff two CRITERION_JSON line files.

The vendored criterion appends one JSON object per benchmark to
$CRITERION_JSON, carrying `id`, `mean_ns` and (for throughput benches)
`per_sec`. CI archives that file per run; this script compares the current
run against the previous artifact, prints a per-benchmark delta summary
table, and fails when any benchmark's records/sec drops by more than the
threshold (default 15%).

Benchmarks without a `per_sec` field fall back to comparing `mean_ns`
(inverted, so "slower" is a regression either way). Ids present in only one
file are reported but never fail the gate — benches come and go across PRs.

Usage: bench_gate.py BASELINE.json CURRENT.json [--threshold 0.15]
"""

import argparse
import json
import sys


def load(path):
    """Parses a JSON-lines bench file into {id: rate}, last write wins."""
    rates = {}
    with open(path, encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as e:
                print(f"{path}:{line_no}: skipping unparsable line ({e})")
                continue
            bench_id = row.get("id")
            if bench_id is None:
                continue
            if row.get("per_sec"):
                rates[bench_id] = float(row["per_sec"])
            elif row.get("mean_ns"):
                # No throughput declared: use inverse time so that a larger
                # value is still "faster".
                rates[bench_id] = 1e9 / float(row["mean_ns"])
    return rates


def print_table(rows):
    """Prints an aligned per-benchmark delta summary table.

    `rows` is a list of (bench_id, baseline, current, delta, status) with
    baseline/current/delta possibly None (NEW and DROPPED benchmarks).
    """
    headers = ("benchmark", "baseline/s", "current/s", "delta", "status")
    rendered = [
        (
            bench_id,
            f"{old:.3e}" if old is not None else "-",
            f"{new:.3e}" if new is not None else "-",
            f"{change:+.1%}" if change is not None else "-",
            status,
        )
        for bench_id, old, new, change, status in rows
    ]
    widths = [
        max(len(headers[col]), max((len(r[col]) for r in rendered), default=0))
        for col in range(len(headers))
    ]

    def line(cells):
        # Left-align the benchmark name, right-align the numeric columns.
        out = [cells[0].ljust(widths[0])]
        out += [cells[col].rjust(widths[col]) for col in range(1, len(cells))]
        return "  " + "  ".join(out)

    print(line(headers))
    print(line(tuple("-" * w for w in widths)))
    for row in rendered:
        print(line(row))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="maximum tolerated fractional throughput drop (default 0.15)",
    )
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)
    if not baseline:
        print(f"gate: baseline {args.baseline} holds no benchmarks; passing trivially")
        return 0

    rows = []
    failures = []
    for bench_id in sorted(set(baseline) | set(current)):
        old = baseline.get(bench_id)
        new = current.get(bench_id)
        if old is None:
            rows.append((bench_id, None, new, None, "NEW"))
            continue
        if new is None:
            rows.append((bench_id, old, None, None, "DROPPED"))
            continue
        change = (new - old) / old
        status = "OK"
        if change < -args.threshold:
            status = "REGRESSED"
            failures.append((bench_id, old, new, change))
        rows.append((bench_id, old, new, change, status))

    print_table(rows)

    if failures:
        print(
            f"\ngate: {len(failures)} benchmark(s) regressed more than "
            f"{args.threshold:.0%}:"
        )
        for bench_id, old, new, change in failures:
            print(f"  {bench_id}: {old:.3e} -> {new:.3e}/s ({change:+.1%})")
        return 1
    print(f"\ngate: no regression beyond {args.threshold:.0%} across {len(current)} benchmarks")
    return 0


if __name__ == "__main__":
    sys.exit(main())
