#!/usr/bin/env python3
"""Bench regression gate: diff two CRITERION_JSON line files.

The vendored criterion appends one JSON object per benchmark to
$CRITERION_JSON, carrying `id`, `mean_ns` and (for throughput benches)
`per_sec`. CI archives that file per run; this script compares the current
run against the previous artifact, prints a per-benchmark delta summary
table, and fails when any benchmark's records/sec drops by more than the
threshold (default 15%).

Benchmarks without a `per_sec` field fall back to comparing `mean_ns`
(inverted, so "slower" is a regression either way). Ids present in only one
file are reported but never fail the gate — benches come and go across PRs.

Benches may also append *constraint* rows of the form
`{"id": ..., "ref": ..., "min_ratio": N}` (see `declare_ratio_floor` in the
bench sources). Each one asserts that, within the CURRENT file alone,
`per_sec[id] >= min_ratio * per_sec[ref]`. Because both sides are measured
in the same run, the check is immune to shared-runner speed differences,
and it runs even when no baseline file is available — it is a property of
the current build, not a diff.

Usage: bench_gate.py BASELINE.json CURRENT.json [--threshold 0.15]
"""

import argparse
import json
import sys


def load(path):
    """Parses a JSON-lines bench file into ({id: rate}, [constraints]).

    Measurement rows keep the last write per id. Constraint rows — those
    carrying a `min_ratio` — are collected in file order as
    (id, ref, min_ratio) tuples.
    """
    rates = {}
    constraints = []
    with open(path, encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as e:
                print(f"{path}:{line_no}: skipping unparsable line ({e})")
                continue
            bench_id = row.get("id")
            if bench_id is None:
                continue
            if row.get("min_ratio") is not None:
                ref = row.get("ref")
                if ref is None:
                    print(f"{path}:{line_no}: min_ratio row lacks 'ref'; skipping")
                    continue
                constraints.append((bench_id, ref, float(row["min_ratio"])))
                continue
            if row.get("per_sec"):
                rates[bench_id] = float(row["per_sec"])
            elif row.get("mean_ns"):
                # No throughput declared: use inverse time so that a larger
                # value is still "faster".
                rates[bench_id] = 1e9 / float(row["mean_ns"])
    return rates, constraints


def check_ratio_floors(rates, constraints):
    """Verifies every in-run ratio floor against the current file's rates.

    Prints an aligned summary table pairing each constraint's measured ratio
    with its declared floor, and returns the list of violation strings
    (empty when all floors hold).
    """
    violations = []
    rows = []
    for bench_id, ref, min_ratio in constraints:
        num = rates.get(bench_id)
        den = rates.get(ref)
        if num is None or den is None:
            missing = bench_id if num is None else ref
            rows.append((f"{bench_id} / {ref}", None, min_ratio, "MISSING"))
            violations.append(
                f"{bench_id} >= {min_ratio}x {ref}: measurement for "
                f"'{missing}' missing from the current file"
            )
            continue
        ratio = num / den
        status = "OK" if ratio >= min_ratio else "BELOW FLOOR"
        rows.append((f"{bench_id} / {ref}", ratio, min_ratio, status))
        if ratio < min_ratio:
            violations.append(
                f"{bench_id} at {ratio:.2f}x of {ref}, floor is {min_ratio}x"
            )
    print_constraint_table(rows)
    return violations


def print_constraint_table(rows):
    """Prints the aligned in-run ratio-floor table.

    `rows` is a list of (constraint, measured, floor, status) with `measured`
    possibly None (a side of the ratio missing from the current file).
    """
    headers = ("constraint", "measured", "floor", "status")
    rendered = [
        (
            constraint,
            f"{measured:.2f}x" if measured is not None else "-",
            f">={floor}x",
            status,
        )
        for constraint, measured, floor, status in rows
    ]
    widths = [
        max(len(headers[col]), max((len(r[col]) for r in rendered), default=0))
        for col in range(len(headers))
    ]

    def line(cells):
        out = [cells[0].ljust(widths[0])]
        out += [cells[col].rjust(widths[col]) for col in range(1, len(cells))]
        return "  " + "  ".join(out)

    print(line(headers))
    print(line(tuple("-" * w for w in widths)))
    for row in rendered:
        print(line(row))


def print_table(rows):
    """Prints an aligned per-benchmark delta summary table.

    `rows` is a list of (bench_id, baseline, current, delta, status) with
    baseline/current/delta possibly None (NEW and DROPPED benchmarks).
    """
    headers = ("benchmark", "baseline/s", "current/s", "delta", "status")
    rendered = [
        (
            bench_id,
            f"{old:.3e}" if old is not None else "-",
            f"{new:.3e}" if new is not None else "-",
            f"{change:+.1%}" if change is not None else "-",
            status,
        )
        for bench_id, old, new, change, status in rows
    ]
    widths = [
        max(len(headers[col]), max((len(r[col]) for r in rendered), default=0))
        for col in range(len(headers))
    ]

    def line(cells):
        # Left-align the benchmark name, right-align the numeric columns.
        out = [cells[0].ljust(widths[0])]
        out += [cells[col].rjust(widths[col]) for col in range(1, len(cells))]
        return "  " + "  ".join(out)

    print(line(headers))
    print(line(tuple("-" * w for w in widths)))
    for row in rendered:
        print(line(row))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="maximum tolerated fractional throughput drop (default 0.15)",
    )
    args = parser.parse_args()

    baseline, _ = load(args.baseline)
    current, constraints = load(args.current)

    # In-run ratio floors are a property of the current run alone, so they
    # are enforced even on the very first run, before any baseline exists.
    ratio_failures = []
    if constraints:
        print(f"in-run ratio floors ({len(constraints)} declared):")
        ratio_failures = check_ratio_floors(current, constraints)
        print()

    if not baseline:
        print(f"gate: baseline {args.baseline} holds no benchmarks; skipping diff")
        if ratio_failures:
            print(f"\ngate: {len(ratio_failures)} in-run ratio floor(s) violated:")
            for violation in ratio_failures:
                print(f"  {violation}")
            return 1
        return 0

    rows = []
    failures = []
    for bench_id in sorted(set(baseline) | set(current)):
        old = baseline.get(bench_id)
        new = current.get(bench_id)
        if old is None:
            rows.append((bench_id, None, new, None, "NEW"))
            continue
        if new is None:
            rows.append((bench_id, old, None, None, "DROPPED"))
            continue
        change = (new - old) / old
        status = "OK"
        if change < -args.threshold:
            status = "REGRESSED"
            failures.append((bench_id, old, new, change))
        rows.append((bench_id, old, new, change, status))

    print_table(rows)

    failed = False
    if failures:
        print(
            f"\ngate: {len(failures)} benchmark(s) regressed more than "
            f"{args.threshold:.0%}:"
        )
        for bench_id, old, new, change in failures:
            print(f"  {bench_id}: {old:.3e} -> {new:.3e}/s ({change:+.1%})")
        failed = True
    if ratio_failures:
        print(f"\ngate: {len(ratio_failures)} in-run ratio floor(s) violated:")
        for violation in ratio_failures:
            print(f"  {violation}")
        failed = True
    if failed:
        return 1
    print(f"\ngate: no regression beyond {args.threshold:.0%} across {len(current)} benchmarks")
    return 0


if __name__ == "__main__":
    sys.exit(main())
