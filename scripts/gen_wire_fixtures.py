#!/usr/bin/env python3
"""Generate the golden wire-format fixtures, independently of the Rust code.

This script is the *other* implementation of the wire formats: it follows the
specs in `crates/wire/src/json.rs` and `crates/wire/src/btrw.rs` (canonical
JSON; BTRW magic/version header, tagged values, LEB128 varints, zig-zag
deltas for unsigned sequences) without sharing a line of code with the Rust
encoders. The checked-in fixtures it writes pin the formats: if the Rust
encoder or decoder drifts — field order, float formatting, varint width, tag
numbering, delta convention — `cargo test` fails on a byte comparison
without relying on proptest luck.

Deterministic: running it twice produces identical bytes. Regenerate with

    python3 scripts/gen_wire_fixtures.py
"""

import json
import struct
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


class U64Seq(list):
    """Marks a list of unsigned integers as a dense sequence (BTRW tag 9)."""


# ---------------------------------------------------------------- BTRW writer


def varint(v: int) -> bytes:
    out = bytearray()
    while True:
        byte = v & 0x7F
        v >>= 7
        if v == 0:
            out.append(byte)
            return bytes(out)
        out.append(byte | 0x80)


def zigzag(v: int) -> int:
    return (v << 1) ^ (v >> 63) if v >= 0 else ((v << 1) ^ -1) & ((1 << 64) - 1)


def encode_value(value) -> bytes:
    if value is None:
        return b"\x00"
    if value is False:
        return b"\x01"
    if value is True:
        return b"\x02"
    if isinstance(value, U64Seq):
        out = bytearray(b"\x09" + varint(len(value)))
        prev = 0
        for item in value:
            delta = (item - prev) % (1 << 64)
            # Interpret the wrapping difference as signed for zig-zag.
            signed = delta - (1 << 64) if delta >= (1 << 63) else delta
            out += varint(zigzag(signed))
            prev = item
        return bytes(out)
    if isinstance(value, int):
        if value >= 0:
            return b"\x03" + varint(value)
        return b"\x04" + varint(zigzag(value))
    if isinstance(value, float):
        return b"\x05" + struct.pack("<d", value)
    if isinstance(value, str):
        raw = value.encode("utf-8")
        return b"\x06" + varint(len(raw)) + raw
    if isinstance(value, list):
        out = bytearray(b"\x07" + varint(len(value)))
        for item in value:
            out += encode_value(item)
        return bytes(out)
    if isinstance(value, dict):
        out = bytearray(b"\x08" + varint(len(value)))
        for key, item in value.items():
            raw = key.encode("utf-8")
            out += varint(len(raw)) + raw + encode_value(item)
        return bytes(out)
    raise TypeError(f"cannot encode {type(value)}")


def encode_btrw(value) -> bytes:
    return b"BTRW" + struct.pack("<I", 1) + encode_value(value)


def encode_json(value) -> bytes:
    # Canonical form: compact separators, insertion order, raw UTF-8.
    # Python's float repr is shortest-round-trip, like Rust's.
    return json.dumps(value, separators=(",", ":"), ensure_ascii=False).encode("utf-8")


def write_fixture(directory: Path, name: str, value) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    (directory / f"{name}.json").write_bytes(encode_json(value))
    (directory / f"{name}.btrw").write_bytes(encode_btrw(value))
    print(f"wrote {directory / name}.{{json,btrw}}")


# ------------------------------------------------- classification mirrors
# Binning arithmetic mirrored from crates/core/src/class.rs so grid cells are
# computed, not hand-copied (IEEE doubles behave identically here and there).


def classify_paper11(rate: float) -> int:
    permille = round(rate * 1000.0)
    if permille < 50:
        return 0
    if permille >= 950:
        return 10
    return (permille - 50) // 100 + 1


def classify_uniform(rate: float, n: int) -> int:
    return min(int(rate * n), n - 1)


# --------------------------------------------------------------- fixtures

# The shared sample profile: a biased branch, a hard 50/50 branch, a lightly
# taken branch and a top-of-address-space branch (exercises delta wraparound
# in the sorted address column).
BRANCHES = [
    # (addr, executions, taken, transitions)
    (0x1000, 100, 97, 4),
    (0x1010, 50, 25, 24),
    (0x2000, 200, 10, 19),
    (0xFFFF_FFFF_FFFF_FFF0, 3, 0, 2),
]


def program_profile():
    return {
        "addrs": U64Seq(b[0] for b in BRANCHES),
        "executions": U64Seq(b[1] for b in BRANCHES),
        "taken": U64Seq(b[2] for b in BRANCHES),
        "transitions": U64Seq(b[3] for b in BRANCHES),
    }


def class_distribution():
    counts = [0] * 11
    for _, execs, taken, _ in BRANCHES:
        counts[classify_paper11(taken / execs)] += execs
    return {
        "metric": "taken_rate",
        "scheme": "paper-11",
        "counts": U64Seq(counts),
        "total": sum(counts),
    }


def joint_table(n: int = 3):
    counts = [[0] * n for _ in range(n)]
    statics = [[0] * n for _ in range(n)]
    for _, execs, taken, transitions in BRANCHES:
        t = classify_uniform(taken / execs, n)
        x = classify_uniform(transitions / execs, n)
        counts[x][t] += execs
        statics[x][t] += 1
    return {
        "scheme": f"uniform-{n}",
        "counts": [U64Seq(row) for row in counts],
        "static_counts": [U64Seq(row) for row in statics],
        "total": sum(map(sum, counts)),
    }


def kitchen_sink():
    """Every tag and the tricky encodings, for the wire crate itself."""
    return {
        "null": None,
        "yes": True,
        "no": False,
        "u64_max": (1 << 64) - 1,
        "neg": -42,
        "pi": 3.141592653589793,
        "half": 0.5,
        "two": 2.0,
        "name": 'héllo "wire"\n\tdone',
        "seq": U64Seq([0x0040_0000, 0x0040_0008, 0x0040_0010, (1 << 64) - 1, 0]),
        "list": [1, "x", None, [{"k": []}]],
        "empty": {},
    }


def main() -> None:
    write_fixture(ROOT / "crates/wire/tests/fixtures", "kitchen_sink", kitchen_sink())
    core = ROOT / "crates/core/tests/fixtures"
    write_fixture(core, "program_profile", program_profile())
    write_fixture(core, "class_distribution", class_distribution())
    write_fixture(core, "joint_table", joint_table())


if __name__ == "__main__":
    main()
