//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize` / `Deserialize` names (trait + derive macro, like
//! real serde with the `derive` feature) so the workspace's
//! `#[derive(Serialize, Deserialize)]` annotations compile without network
//! access. Both traits are empty markers with blanket impls; the derives
//! expand to nothing. The workspace's on-disk formats are hand-written in
//! `btr-trace::io` and do not depend on serde's data model.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`. Every type implements it.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`. Every type implements it.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
