//! Schedule-perturbation stress test: `WorkStealingPool::run` must return
//! bit-identical results no matter how the OS schedules its workers.
//!
//! The pool underpins the windowed-parallel sweep engine, whose contract is
//! that thread count and scheduling never change a single output bit. The
//! unit tests exercise happy-path schedules; this test goes looking for the
//! unhappy ones by injecting randomized delays — busy spins and
//! `thread::yield_now` bursts, seeded per task from a deterministic
//! xorshift — so that across a few hundred seeds the steal pattern varies
//! wildly: workers finish early and raid peers, stragglers hold the last
//! task, every deque gets stolen from at some point. Whatever the
//! interleaving, each task's result must equal the sequential (threads = 1,
//! inline) execution bit for bit, and results must come back in task-index
//! order.

use std::sync::atomic::{AtomicUsize, Ordering};
use stealpool::WorkStealingPool;

/// Deterministic xorshift64 — no RNG dependency, reproducible across runs.
fn xorshift(mut x: u64) -> u64 {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

/// The task body: a little integer pipeline whose result depends on the task
/// index and payload only. The injected spin/yield noise perturbs *when* the
/// task runs, never *what* it computes — exactly the property the pool must
/// preserve.
fn compute(idx: usize, payload: u64, noise_seed: u64) -> u64 {
    // Perturb scheduling: short busy spin, then 0–3 cooperative yields.
    let mut spin = noise_seed % 512;
    let mut acc = payload;
    while spin > 0 {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
        spin -= 1;
    }
    for _ in 0..(noise_seed >> 9) % 4 {
        std::thread::yield_now();
    }
    // The actual result: fold the spin accumulator back in deterministically
    // (it depends only on payload and noise_seed, both fixed per task).
    xorshift(acc ^ (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

#[test]
fn randomized_schedules_are_bit_identical_to_sequential() {
    // ~300 seeds × varying thread counts and batch sizes. Each seed fixes
    // the payloads and the per-task noise, so the only varying input across
    // repeated runs of one seed is the OS schedule.
    for seed in 1..=300u64 {
        let threads = (seed % 7 + 1) as usize; // 1..=7 workers
        let len = (xorshift(seed) % 61 + 1) as usize; // 1..=61 tasks
        let tasks: Vec<u64> = (0..len as u64)
            .map(|i| xorshift(seed.wrapping_mul(0x100_0000_01b3).wrapping_add(i)))
            .collect();

        let sequential = WorkStealingPool::new(1).run(tasks.clone(), |idx, payload| {
            compute(idx, payload, xorshift(payload ^ seed))
        });
        let parallel = WorkStealingPool::new(threads).run(tasks, |idx, payload| {
            compute(idx, payload, xorshift(payload ^ seed))
        });
        assert_eq!(
            parallel, sequential,
            "seed {seed}: {threads}-thread run diverged from sequential"
        );
    }
}

#[test]
fn every_task_runs_exactly_once_under_contention() {
    // Contended batch: tiny tasks, more workers than cores is fine — the
    // pool must still run each index exactly once and keep index order.
    let calls = AtomicUsize::new(0);
    let results = WorkStealingPool::new(8).run((0..997usize).collect(), |idx, task| {
        assert_eq!(idx, task, "task payload must arrive at its own index");
        calls.fetch_add(1, Ordering::Relaxed);
        for _ in 0..idx % 3 {
            std::thread::yield_now();
        }
        idx * 2 + 1
    });
    assert_eq!(calls.load(Ordering::Relaxed), 997);
    let expected: Vec<usize> = (0..997).map(|i| i * 2 + 1).collect();
    assert_eq!(results, expected);
}
