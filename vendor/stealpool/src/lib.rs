//! Work-stealing batch executor (rayon/crossbeam-deque style), std only.
//!
//! The workspace has no crates.io access, so this vendors the minimal slice
//! of the rayon design the simulation runner needs: a fixed set of worker
//! threads, one double-ended work queue per worker, owners popping newest
//! tasks from the back (LIFO, cache-warm), thieves stealing oldest tasks from
//! the front (FIFO, coarse-grained). Unlike the real Chase-Lev deque this one
//! guards each queue with its own `Mutex` — the tasks this pool runs are
//! whole-trace simulations taking milliseconds to seconds, so a lock per
//! push/pop is noise while keeping the crate `forbid(unsafe_code)`.
//!
//! The pool executes *batches*: every task is known up front, tasks never
//! spawn subtasks, and results are returned in task-index order regardless of
//! which worker ran what — so callers get deterministic, merge-by-index
//! output for free.
//!
//! ```
//! use stealpool::WorkStealingPool;
//!
//! let pool = WorkStealingPool::new(4);
//! let squares = pool.run((0u64..100).collect(), |idx, n| {
//!     assert_eq!(idx as u64, n);
//!     n * n
//! });
//! assert_eq!(squares[7], 49);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::Mutex;

/// One worker's double-ended task queue plus the shared stealing view of it.
///
/// The owner treats the back as a stack (`pop` takes the most recently pushed
/// task); thieves take from the front, so a steal grabs the task the owner
/// would reach last. Indexed tasks are distributed round-robin before the
/// workers start, so the front of each deque holds the globally "oldest"
/// tasks — the same large-granularity steals rayon's FIFO stealers make.
#[derive(Debug)]
pub struct TaskDeque<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> TaskDeque<T> {
    /// Creates an empty deque.
    pub fn new() -> Self {
        TaskDeque {
            queue: Mutex::new(VecDeque::new()),
        }
    }

    /// Pushes a task onto the owner end (the back).
    pub fn push(&self, task: T) {
        self.queue.lock().expect("deque poisoned").push_back(task);
    }

    /// Pops from the owner end (LIFO).
    pub fn pop(&self) -> Option<T> {
        self.queue.lock().expect("deque poisoned").pop_back()
    }

    /// Steals from the thief end (FIFO).
    pub fn steal(&self) -> Option<T> {
        self.queue.lock().expect("deque poisoned").pop_front()
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        self.queue.lock().expect("deque poisoned").len()
    }

    /// Whether the deque holds no tasks.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Default for TaskDeque<T> {
    fn default() -> Self {
        TaskDeque::new()
    }
}

/// A fixed-width work-stealing pool executing one batch of indexed tasks at a
/// time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkStealingPool {
    threads: usize,
}

impl WorkStealingPool {
    /// Creates a pool that runs batches on up to `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "at least one thread is required");
        WorkStealingPool { threads }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` over every task, returning results in task-index order.
    ///
    /// Tasks are dealt round-robin across per-worker deques; an idle worker
    /// first drains its own deque from the back, then steals from its peers'
    /// fronts. Because the batch is fixed (no task spawns another), a worker
    /// that finds every deque empty is done. With a single worker — or a
    /// single task — the batch runs inline on the calling thread, so
    /// `threads = 1` is exactly sequential execution.
    pub fn run<T, R, F>(&self, tasks: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let workers = self.threads.min(tasks.len());
        if workers <= 1 {
            return tasks
                .into_iter()
                .enumerate()
                .map(|(idx, task)| f(idx, task))
                .collect();
        }

        let deques: Vec<TaskDeque<(usize, T)>> = (0..workers).map(|_| TaskDeque::new()).collect();
        let total = tasks.len();
        for (idx, task) in tasks.into_iter().enumerate() {
            deques[idx % workers].push((idx, task));
        }
        let slots: Vec<Mutex<Option<R>>> = (0..total).map(|_| Mutex::new(None)).collect();

        std::thread::scope(|scope| {
            for me in 0..workers {
                let deques = &deques;
                let slots = &slots;
                let f = &f;
                scope.spawn(move || loop {
                    // Own work first (newest-first keeps the last-dealt, most
                    // cache-relevant task local) …
                    let next = deques[me].pop().or_else(|| {
                        // … then sweep the peers once, oldest-first.
                        (1..workers).find_map(|off| deques[(me + off) % workers].steal())
                    });
                    match next {
                        Some((idx, task)) => {
                            *slots[idx].lock().expect("result slot poisoned") = Some(f(idx, task));
                        }
                        None => break,
                    }
                });
            }
        });

        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every task index must produce a result")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn deque_is_lifo_for_owner_and_fifo_for_thief() {
        let d = TaskDeque::new();
        d.push(1);
        d.push(2);
        d.push(3);
        assert_eq!(d.len(), 3);
        assert_eq!(d.steal(), Some(1)); // thief takes the oldest
        assert_eq!(d.pop(), Some(3)); // owner takes the newest
        assert_eq!(d.pop(), Some(2));
        assert!(d.is_empty());
        assert_eq!(d.pop(), None);
        assert_eq!(d.steal(), None);
        assert!(TaskDeque::<u8>::default().is_empty());
    }

    #[test]
    fn results_come_back_in_task_order() {
        let pool = WorkStealingPool::new(8);
        let out = pool.run((0..1000u64).collect(), |idx, n| {
            assert_eq!(idx as u64, n);
            n * 2
        });
        assert_eq!(out.len(), 1000);
        assert!(out.iter().enumerate().all(|(i, v)| *v == i as u64 * 2));
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let pool = WorkStealingPool::new(4);
        let out = pool.run(vec![(); 257], |idx, ()| {
            counter.fetch_add(1, Ordering::SeqCst);
            idx
        });
        assert_eq!(counter.load(Ordering::SeqCst), 257);
        assert_eq!(out, (0..257).collect::<Vec<_>>());
    }

    #[test]
    fn more_threads_than_tasks_is_fine() {
        let pool = WorkStealingPool::new(16);
        assert_eq!(pool.threads(), 16);
        assert_eq!(pool.run(vec![5, 6], |_, n| n + 1), vec![6, 7]);
    }

    #[test]
    fn single_thread_and_empty_batches_run_inline() {
        let pool = WorkStealingPool::new(1);
        assert_eq!(pool.run(vec![1, 2, 3], |_, n| n * n), vec![1, 4, 9]);
        let empty: Vec<u32> = pool.run(Vec::<u32>::new(), |_, n| n);
        assert!(empty.is_empty());
    }

    #[test]
    fn uneven_task_costs_still_complete() {
        let pool = WorkStealingPool::new(3);
        let out = pool.run((0..64u64).collect(), |_, n| {
            // Make early (front-of-deque, steal-prone) tasks the slow ones.
            let spins = if n < 8 { 20_000 } else { 10 };
            (0..spins).fold(n, |acc, _| std::hint::black_box(acc.wrapping_mul(31)))
        });
        assert_eq!(out.len(), 64);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = WorkStealingPool::new(0);
    }
}
