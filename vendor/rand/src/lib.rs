//! Offline stand-in for the `rand` crate (0.8-compatible surface).
//!
//! Implements exactly the API this workspace uses — [`Rng::gen`],
//! [`Rng::gen_range`], [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`] and [`seq::SliceRandom`] — on top of a deterministic
//! xoshiro256++ generator seeded via splitmix64. Determinism is the only
//! property the reproduction relies on: every workload generator seeds its
//! own `StdRng` so traces are reproducible across runs and platforms.
//!
//! Note: the stream of values differs from the real `rand::rngs::StdRng`
//! (ChaCha12), so absolute generated traces differ from a build against real
//! rand. All paper statistics are tolerance-based, not stream-exact.

#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A random generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed (splitmix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generator types.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s == [0; 4] {
                // xoshiro must not start in the all-zero state.
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

/// Types that can be sampled uniformly from their whole domain via
/// [`Rng::gen`] (stand-in for rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;

    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every word is valid.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange for core::ops::Range<f32> {
    type Output = f32;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its full domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<Range: SampleRange>(&mut self, range: Range) -> Range::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related sampling helpers.
pub mod seq {
    use super::RngCore;

    /// Random operations on slices (stand-in for rand's `SliceRandom`).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(4..=24);
            assert!((4..=24).contains(&w));
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_floats_cover_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            lo |= f < 0.25;
            hi |= f > 0.75;
        }
        assert!(lo && hi, "samples should spread across [0, 1)");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
