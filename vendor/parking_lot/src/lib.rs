//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free API:
//! `lock()` returns the guard directly and poisoning is ignored (a poisoned
//! std lock yields its inner data, matching parking_lot's behaviour of not
//! tracking poisoning at all).

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard, TryLockError};

/// A mutual-exclusion lock with parking_lot's non-poisoning interface.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock with parking_lot's non-poisoning interface.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic_operations() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_basic_operations() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
