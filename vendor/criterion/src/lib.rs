//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the Criterion 0.5 API the workspace's benches
//! use: [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `sample_size` / `throughput` / `bench_with_input` / `finish`,
//! [`BenchmarkId`], [`Throughput`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! There is no statistical analysis: each benchmark closure is timed for
//! `sample_size` iterations after one warm-up iteration and the mean
//! wall-clock time is printed, together with the per-second work rate when
//! the benchmark declared a [`Throughput`]. That keeps `cargo bench`
//! meaningful for relative comparisons while staying dependency-free.
//!
//! When the `CRITERION_JSON` environment variable names a file, every
//! benchmark additionally appends one JSON line to it —
//! `{"id": …, "mean_ns": …, "per_sec": …, "unit": …}` — so CI can collect
//! per-figure timings as an artifact and diff them across commits. The lines
//! are written with `btr_wire::json`, the same canonical JSON writer the
//! `reproduce` artifacts use.

#![forbid(unsafe_code)]

use btr_wire::{json, MapBuilder};
use std::fmt;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measures closures handed to it by a benchmark body.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it once for warm-up and then `iterations`
    /// measured times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Identifies one parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of a parameter value only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Units-of-work declaration used to report throughput alongside time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, self.sample_size, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured iterations for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Declares the units of work processed per iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark inside this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group. (No-op here; reports are printed as benches run.)
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: u64,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        iterations: sample_size,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let iters = bencher.iterations.max(1);
    let mean = bencher.elapsed.as_secs_f64() / iters as f64;
    let per_sec = match throughput {
        Some(Throughput::Elements(n)) if mean > 0.0 => Some((n as f64 / mean, "elements")),
        Some(Throughput::Bytes(n)) if mean > 0.0 => Some((n as f64 / mean, "bytes")),
        _ => None,
    };
    let rate = match per_sec {
        Some((r, "elements")) => format!("  ({r:.3e} elem/s)"),
        Some((r, _)) => format!("  ({r:.3e} B/s)"),
        None => String::new(),
    };
    println!("bench {id:<50} {:>12.3} µs/iter{rate}", mean * 1e6);
    emit_json_line(id, mean, per_sec);
}

/// Appends one machine-readable result line to the `CRITERION_JSON` file, if
/// that environment variable is set. `per_sec` carries its unit so artifact
/// consumers can tell records/sec from bytes/sec. Times and rates are
/// rounded to one decimal (sub-0.1 ns resolution is measurement noise) and
/// encoded with the workspace's canonical JSON writer. Failures to write are
/// reported on stderr but never fail the benchmark run.
fn emit_json_line(id: &str, mean_secs: f64, per_sec: Option<(f64, &str)>) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let tenth = |v: f64| (v * 10.0).round() / 10.0;
    let mut fields = MapBuilder::new()
        .field("id", id)
        .field("mean_ns", tenth(mean_secs * 1e9));
    if let Some((rate, unit)) = per_sec {
        fields = fields
            .field("per_sec", tenth(rate))
            .field("unit", format!("{unit}/s"));
    }
    let mut line = match json::to_string(&fields.build()) {
        Ok(line) => line,
        Err(err) => {
            // Unreachable for finite timings, but a bench must never panic
            // over its own reporting.
            eprintln!("criterion stand-in: cannot encode result line: {err}");
            return;
        }
    };
    line.push('\n');
    let written = OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut file| file.write_all(line.as_bytes()));
    if let Err(err) = written {
        eprintln!("criterion stand-in: cannot append to {path}: {err}");
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a benchmark binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("standalone", |b| b.iter(|| black_box(1u64 + 1)));
        let mut group = c.benchmark_group("group");
        group.sample_size(5);
        group.throughput(Throughput::Elements(100));
        group.bench_function("inner", |b| b.iter(|| black_box(2u64 * 2)));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u32, |b, &n| {
            b.iter(|| black_box(n * n))
        });
        group.finish();
    }

    criterion_group!(benches, target);

    #[test]
    fn harness_runs_every_shape() {
        benches();
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("gcc").to_string(), "gcc");
    }

    #[test]
    fn json_lines_are_valid_and_appended() {
        let path = std::env::temp_dir().join(format!("criterion_json_test_{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let path_str = path.to_str().unwrap().to_string();
        emit_json_line_to(
            &path_str,
            "group/\"quoted\"",
            1.5e-3,
            Some((2.0e6, "elements")),
        );
        emit_json_line_to(&path_str, "plain", 2.0e-6, None);
        let contents = std::fs::read_to_string(&path).unwrap();
        // Other tests in this process may run benchmarks concurrently, so
        // select our lines by id instead of asserting on the whole file.
        let quoted = contents
            .lines()
            .find(|l| l.contains("\\\"quoted\\\""))
            .expect("escaped id line present");
        // Each line is one canonical-JSON document the wire parser accepts.
        let parsed = json::from_str(quoted).expect("line must be valid JSON");
        assert_eq!(
            parsed.get("id").unwrap().as_str().unwrap(),
            "group/\"quoted\""
        );
        assert_eq!(parsed.get("mean_ns").unwrap().as_f64().unwrap(), 1.5e6);
        assert_eq!(parsed.get("per_sec").unwrap().as_f64().unwrap(), 2.0e6);
        assert_eq!(parsed.get("unit").unwrap().as_str().unwrap(), "elements/s");
        // Floats keep a fraction marker so consumers parse them as floats.
        assert!(quoted.contains("\"mean_ns\":1500000.0"));
        let plain = contents
            .lines()
            .find(|l| l.contains("\"id\":\"plain\""))
            .expect("plain id line present");
        let parsed = json::from_str(plain).expect("line must be valid JSON");
        assert!(parsed.get_opt("per_sec").unwrap().is_none());
        let _ = std::fs::remove_file(&path);
    }

    /// Test shim: routes `emit_json_line` at a scratch file via the
    /// environment variable, restoring the variable afterwards.
    fn emit_json_line_to(path: &str, id: &str, mean_secs: f64, per_sec: Option<(f64, &str)>) {
        let previous = std::env::var("CRITERION_JSON").ok();
        std::env::set_var("CRITERION_JSON", path);
        emit_json_line(id, mean_secs, per_sec);
        match previous {
            Some(value) => std::env::set_var("CRITERION_JSON", value),
            None => std::env::remove_var("CRITERION_JSON"),
        }
    }
}
