//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the Criterion 0.5 API the workspace's benches
//! use: [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `sample_size` / `throughput` / `bench_with_input` / `finish`,
//! [`BenchmarkId`], [`Throughput`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! There is no statistical analysis: each benchmark closure is timed for
//! `sample_size` iterations after one warm-up iteration and the mean
//! wall-clock time is printed. That keeps `cargo bench` meaningful for
//! relative comparisons while staying dependency-free.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measures closures handed to it by a benchmark body.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it once for warm-up and then `iterations`
    /// measured times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Identifies one parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of a parameter value only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Units-of-work declaration used to report throughput alongside time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, self.sample_size, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured iterations for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Declares the units of work processed per iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark inside this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group. (No-op here; reports are printed as benches run.)
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: u64,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        iterations: sample_size,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let iters = bencher.iterations.max(1);
    let mean = bencher.elapsed.as_secs_f64() / iters as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > 0.0 => {
            format!("  ({:.3e} elem/s)", n as f64 / mean)
        }
        Some(Throughput::Bytes(n)) if mean > 0.0 => {
            format!("  ({:.3e} B/s)", n as f64 / mean)
        }
        _ => String::new(),
    };
    println!("bench {id:<50} {:>12.3} µs/iter{rate}", mean * 1e6);
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a benchmark binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("standalone", |b| b.iter(|| black_box(1u64 + 1)));
        let mut group = c.benchmark_group("group");
        group.sample_size(5);
        group.throughput(Throughput::Elements(100));
        group.bench_function("inner", |b| b.iter(|| black_box(2u64 * 2)));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u32, |b, &n| {
            b.iter(|| black_box(n * n))
        });
        group.finish();
    }

    criterion_group!(benches, target);

    #[test]
    fn harness_runs_every_shape() {
        benches();
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("gcc").to_string(), "gcc");
    }
}
