//! Offline stand-in for `serde_derive`.
//!
//! The workspace decorates its data types with `#[derive(Serialize,
//! Deserialize)]` so that swapping in the real serde later is a one-line
//! manifest change. This container has no network access to crates.io, so the
//! derives expand to nothing: the actual trace serialization formats are
//! hand-written in `btr-trace::io` and never go through serde.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` helper attributes) and
/// expands to nothing. The `Serialize` marker trait in the `serde` stub has a
/// blanket impl, so trait bounds keep working.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` helper attributes)
/// and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
