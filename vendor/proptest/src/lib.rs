//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property tests
//! use: the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map` /
//! `prop_flat_map` / `boxed`, [`strategy::Just`], [`arbitrary::any`], range
//! and tuple strategies, [`collection::vec`], [`option::of`],
//! [`sample::Index`], [`prop_oneof!`], the `prop_assert*` / [`prop_assume!`]
//! macros and [`test_runner::ProptestConfig`].
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * No shrinking: a failing case reports the seed-deterministic inputs via
//!   the assertion message only.
//! * Sampling is driven by a fixed per-test deterministic seed (FNV hash of
//!   the test name), so failures are reproducible run-to-run.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! The case runner, its configuration and error type.

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case violated an assumption (`prop_assume!`) and should be
        /// discarded without counting against the case budget.
        Reject(String),
        /// The case failed an assertion.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure error.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }

        /// Builds a rejection error.
        pub fn reject(message: impl Into<String>) -> Self {
            TestCaseError::Reject(message.into())
        }
    }

    /// The result of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases to run per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic random source handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds the generator from a test name, deterministically.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name, expanded with splitmix64.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            let mut s = [0u64; 4];
            for word in &mut s {
                h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = h;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *word = z ^ (z >> 31);
            }
            TestRng { s }
        }

        /// Returns the next 64 random bits (xoshiro256++).
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Runs the generated cases for one `proptest!` test function.
    #[derive(Debug)]
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// Creates a runner with the given configuration.
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { config }
        }

        /// Runs `case` until `config.cases` cases pass; panics on failure.
        ///
        /// # Panics
        ///
        /// Panics when a case fails, or when rejections outnumber the case
        /// budget by 16x (mirroring proptest's "too many global rejects").
        pub fn run(&mut self, name: &str, mut case: impl FnMut(&mut TestRng) -> TestCaseResult) {
            let mut rng = TestRng::deterministic(name);
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < self.config.cases {
                match case(&mut rng) {
                    Ok(()) => accepted += 1,
                    Err(TestCaseError::Reject(_)) => {
                        rejected += 1;
                        assert!(
                            rejected <= self.config.cases.saturating_mul(16).max(256),
                            "proptest '{name}': too many rejected cases ({rejected})"
                        );
                    }
                    Err(TestCaseError::Fail(message)) => {
                        panic!("proptest '{name}' failed after {accepted} passing cases: {message}")
                    }
                }
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait, primitive strategies and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `map`.
        fn prop_map<Out, MapFn>(self, map: MapFn) -> Map<Self, MapFn>
        where
            Self: Sized,
            MapFn: Fn(Self::Value) -> Out,
        {
            Map { source: self, map }
        }

        /// Uses each generated value to build a follow-on strategy.
        fn prop_flat_map<Next, MapFn>(self, map: MapFn) -> FlatMap<Self, MapFn>
        where
            Self: Sized,
            Next: Strategy,
            MapFn: Fn(Self::Value) -> Next,
        {
            FlatMap { source: self, map }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, MapFn> {
        source: S,
        map: MapFn,
    }

    impl<S, Out, MapFn> Strategy for Map<S, MapFn>
    where
        S: Strategy,
        MapFn: Fn(S::Value) -> Out,
    {
        type Value = Out;

        fn sample(&self, rng: &mut TestRng) -> Out {
            (self.map)(self.source.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, MapFn> {
        source: S,
        map: MapFn,
    }

    impl<S, Next, MapFn> Strategy for FlatMap<S, MapFn>
    where
        S: Strategy,
        Next: Strategy,
        MapFn: Fn(S::Value) -> Next,
    {
        type Value = Next::Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.map)(self.source.sample(rng)).sample(rng)
        }
    }

    /// Chooses uniformly among type-erased alternatives ([`crate::prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; `options` must be non-empty.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(
                !options.is_empty(),
                "prop_oneof! requires at least one option"
            );
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let index = rng.below(self.options.len() as u64) as usize;
            self.options[index].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            self.iter().map(|s| s.sample(rng)).collect()
        }
    }
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait and [`any`] strategy constructor.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value from the type's full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`'s full domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A range of collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                min: exact,
                max_exclusive: exact + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(range: core::ops::Range<usize>) -> Self {
            assert!(range.start < range.end, "empty size range");
            SizeRange {
                min: range.start,
                max_exclusive: range.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(range: core::ops::RangeInclusive<usize>) -> Self {
            assert!(range.start() <= range.end(), "empty size range");
            SizeRange {
                min: *range.start(),
                max_exclusive: *range.end() + 1,
            }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy for `Vec`s of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    //! Strategies for `Option`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy returned by [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            // `None` one time in four, like proptest's default weighting.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }

    /// A strategy producing `Some(value)` most of the time and `None` rarely.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }
}

pub mod sample {
    //! Sampling helper types.

    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRng;

    /// An abstract index into a collection of not-yet-known size.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub struct Index(usize);

    impl Index {
        /// Projects the abstract index onto a collection of length `len`.
        ///
        /// # Panics
        ///
        /// Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            self.0 % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64() as usize)
        }
    }
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Discards the current case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Chooses uniformly among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property-test functions.
///
/// Supports the standard proptest shape: an optional
/// `#![proptest_config(expr)]` header followed by `#[test]` functions whose
/// parameters are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::TestRunner::new($config).run(
                    stringify!($name),
                    |__proptest_rng| {
                        $(
                            let $pat =
                                $crate::strategy::Strategy::sample(&($strategy), __proptest_rng);
                        )+
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Module alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::{collection, option, sample, strategy};
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in 0usize..3) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y < 3);
        }

        #[test]
        fn combinators_compose(v in prop::collection::vec(0u32..100, 1..8)) {
            prop_assume!(!v.is_empty());
            prop_assert!(v.len() < 8);
            prop_assert!(v.iter().all(|&e| e < 100));
        }

        #[test]
        fn oneof_and_just(k in prop_oneof![Just(1u8), Just(2u8), Just(3u8)]) {
            prop_assert!((1..=3).contains(&k));
        }

        #[test]
        fn maps_and_tuples((a, b) in (0u8..10, 0u8..10).prop_map(|(x, y)| (x, y))) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(a as u16 + b as u16, b as u16 + a as u16);
        }
    }

    #[test]
    fn option_of_produces_both_variants() {
        let strategy = crate::option::of(0u64..10);
        let mut rng = crate::test_runner::TestRng::deterministic("option");
        let samples: Vec<_> = (0..200).map(|_| strategy.sample(&mut rng)).collect();
        assert!(samples.iter().any(|s| s.is_none()));
        assert!(samples.iter().any(|s| s.is_some()));
    }

    #[test]
    fn flat_map_builds_dependent_strategies() {
        let strategy = (1usize..5).prop_flat_map(|n| prop::collection::vec(0u8..10, n..n + 1));
        let mut rng = crate::test_runner::TestRng::deterministic("flat_map");
        for _ in 0..100 {
            let v = strategy.sample(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }

    #[test]
    #[should_panic(expected = "failed after")]
    fn failures_panic_with_context() {
        crate::test_runner::TestRunner::new(ProptestConfig::with_cases(5)).run(
            "always_fails",
            |rng| {
                let x: u64 = rng.next_u64();
                prop_assert!(x != x, "x is always equal to itself");
                Ok(())
            },
        );
    }
}
