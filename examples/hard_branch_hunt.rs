//! Hard branch hunt: identify the 5/5-class branches the paper singles out,
//! measure how close together they occur (Figure 15), and score them as
//! predication / dual-path candidates (§5.2).
//!
//! Run with: `cargo run --release --example hard_branch_hunt`

use btr::prelude::*;
use btr_core::hard::{DistanceHistogram, HardBranchCriteria, HardBranchSet};
use btr_core::predication::{
    select_candidates, PredicationPolicy, PredicationSummary, PredicationVerdict,
};
use btr_workloads::spec::Benchmark;

fn main() {
    let config = SuiteConfig::default().with_scale(2e-6).with_seed(5);
    let scheme = BinningScheme::Paper11;

    for bench in [
        Benchmark::compress(),
        Benchmark::go(),
        Benchmark::ijpeg("vigo.ppm", 1_627_642_253),
    ] {
        let trace = bench.generate(&config);
        let profile = ProgramProfile::from_trace(&trace);
        let hard = HardBranchSet::from_profile(&profile, scheme, HardBranchCriteria::paper_5_5());
        let histogram = DistanceHistogram::paper_buckets(&trace, &hard);

        println!("== {} ==", bench.label());
        println!(
            "hard (5/5) branches: {} static, {:.2}% of dynamic executions",
            hard.static_count(),
            hard.dynamic_percent()
        );
        let pct = histogram.percentages();
        let labels: Vec<String> = (1..=7)
            .map(|d| format!("d={d}"))
            .chain(["d=8+".to_string()])
            .collect();
        for (label, p) in labels.iter().zip(&pct) {
            println!("  {label:>5}: {p:5.1}%");
        }
        println!(
            "  pairs closer than 4 branches apart: {:.1}% (dual-path pressure)",
            histogram.percent_closer_than(4)
        );

        let candidates = select_candidates(&profile, scheme, PredicationPolicy::default());
        let summary = PredicationSummary::from_candidates(&candidates);
        let recommended = candidates
            .iter()
            .filter(|c| c.verdict == PredicationVerdict::Recommend)
            .take(3)
            .collect::<Vec<_>>();
        println!(
            "  predication: {} branches recommended ({:.2}% of dynamic stream, ~{:.2} avoided misses / 100 branches)",
            summary.recommended, summary.recommended_dynamic_percent, summary.avoided_misses_per_100
        );
        for c in recommended {
            println!(
                "    candidate {} — benefit {:.2}, dynamic weight {:.3}%",
                c.addr,
                c.benefit,
                c.dynamic_weight * 100.0
            );
        }
        println!();
    }
}
