//! Classification report: run a reduced benchmark suite and print the
//! paper's core artefacts — Table 2, the Figure 1/2 distributions and the
//! §4.2 taken-vs-transition coverage comparison.
//!
//! Run with: `cargo run --release --example classification_report`

use btr::sim::experiments::{self, ExperimentContext};

fn main() {
    // A reduced context keeps this example to a few seconds; the `reproduce`
    // binary runs the full 34-benchmark suite.
    let ctx = ExperimentContext::quick();
    println!(
        "preparing {} benchmarks at scale {} (histories {:?}) ...\n",
        ctx.benchmarks.len(),
        ctx.suite.scale,
        ctx.histories
    );
    let data = ctx.prepare();

    let (_, rendered) = experiments::table1(&ctx, &data);
    println!("{rendered}");

    let (_, rendered) = experiments::fig1(&ctx, &data);
    println!("{rendered}");
    let (_, rendered) = experiments::fig2(&ctx, &data);
    println!("{rendered}");

    let (_, analysis, rendered) = experiments::table2(&ctx, &data);
    println!("{rendered}");

    println!(
        "Transition-rate classification certifies {:.2}% of dynamic branches as easy \
         versus {:.2}% for taken-rate classification — a relative improvement of {:.1}%.",
        analysis.transition_easy_coverage_pas,
        analysis.taken_easy_coverage,
        analysis.relative_improvement_pas()
    );
}
