//! Hybrid designer: use taken/transition classification to design a hybrid
//! predictor (the paper's §5.4) and compare it against monolithic baselines.
//!
//! Run with: `cargo run --release --example hybrid_designer`

use btr::prelude::*;
use btr_core::advisor::HybridAdvisor;
use btr_core::report;
use btr_predictors::gshare::GsharePredictor;
use btr_predictors::predictor::BranchPredictor;
use btr_workloads::spec::Benchmark;

fn main() {
    let config = SuiteConfig::default().with_scale(2e-6).with_seed(9);
    let benchmarks = [Benchmark::vortex(), Benchmark::li(), Benchmark::go()];
    let traces: Vec<_> = benchmarks.iter().map(|b| b.generate(&config)).collect();

    // Profile the whole mini-suite.
    let mut profile = ProgramProfile::new();
    for trace in &traces {
        profile.merge(&ProgramProfile::from_trace(trace));
    }
    let scheme = BinningScheme::Paper11;
    let table = JointClassTable::from_profile(&profile, scheme);

    // Ask the advisor for per-class recommendations.
    let advisor = HybridAdvisor::new(scheme);
    let recommendations = advisor.recommend(&table);
    let rows: Vec<Vec<String>> = recommendations
        .iter()
        .filter(|r| r.dynamic_percent >= 0.5)
        .map(|r| {
            vec![
                format!("({}, {})", r.taken_class, r.transition_class),
                format!("{:?}", r.style),
                r.history_bits.to_string(),
                format!("{:.2}%", r.dynamic_percent),
            ]
        })
        .collect();
    println!(
        "{}",
        report::ascii_table(
            &[
                "joint class (taken, transition)".to_string(),
                "component style".to_string(),
                "history bits".to_string(),
                "dynamic share".to_string(),
            ],
            &rows,
        )
    );

    // Materialise the hybrid and race it against baselines.
    let engine = SimEngine::new();
    let run_suite = |mut make: Box<dyn FnMut() -> Box<dyn BranchPredictor>>| {
        let mut merged = btr::sim::engine::RunResult::default();
        for trace in &traces {
            let mut predictor = make();
            merged.merge(&engine.run(trace, &mut *predictor));
        }
        merged.miss_rate().unwrap_or(0.0)
    };
    let classified = run_suite(Box::new(|| Box::new(advisor.build_hybrid(&profile))));
    let gshare = run_suite(Box::new(|| Box::new(GsharePredictor::paper_sized(12))));
    let pas = run_suite(Box::new(|| {
        Box::new(TwoLevelPredictor::new(TwoLevelConfig::pas_paper(8)))
    }));
    let gas = run_suite(Box::new(|| {
        Box::new(TwoLevelPredictor::new(TwoLevelConfig::gas_paper(12)))
    }));

    println!("\nsuite miss rates:");
    println!("  classification-guided hybrid : {classified:.4}");
    println!("  gshare(h=12)                  : {gshare:.4}");
    println!("  PAs(h=8)                      : {pas:.4}");
    println!("  GAs(h=12)                     : {gas:.4}");
}
