//! Quickstart: generate one synthetic benchmark, classify its branches by
//! taken and transition rate, and see how PAs / GAs predictors fare on the
//! classes the paper highlights.
//!
//! Run with: `cargo run --release --example quickstart`

use btr::prelude::*;
use btr_core::distribution::Metric;
use btr_core::report;

fn main() {
    // 1. Generate a scaled-down synthetic "compress" run (the paper's Table 1
    //    row, shrunk by the scale factor).
    let config = SuiteConfig::default().with_scale(2e-6).with_seed(42);
    let trace = Benchmark::compress().generate(&config);
    println!("generated {trace}");

    // 2. Profile it: per-branch taken and transition rates.
    let profile = ProgramProfile::from_trace(&trace);
    println!(
        "profiled {} static branches, {} dynamic executions\n",
        profile.static_count(),
        profile.total_dynamic()
    );

    // 3. The paper's two classifications and the joint table.
    let scheme = BinningScheme::Paper11;
    let taken = ClassDistribution::from_profile(&profile, Metric::TakenRate, scheme);
    let transition = ClassDistribution::from_profile(&profile, Metric::TransitionRate, scheme);
    println!(
        "{}",
        report::render_distribution("Taken rate classes (cf. Figure 1)", &taken)
    );
    println!(
        "{}",
        report::render_distribution("Transition rate classes (cf. Figure 2)", &transition)
    );
    let table = JointClassTable::from_profile(&profile, scheme);
    let analysis = ClassificationAnalysis::from_table(&table);
    println!(
        "easy by taken rate: {:.2}%   easy by transition rate (PAs view): {:.2}%   misclassified: {:.2}%\n",
        analysis.taken_easy_coverage,
        analysis.transition_easy_coverage_pas,
        analysis.misclassified_pas
    );

    // 4. Simulate the paper's PAs and GAs predictors at a few history lengths.
    let engine = SimEngine::new();
    for history in [0u32, 2, 8] {
        let mut pas = TwoLevelPredictor::new(TwoLevelConfig::pas_paper(history));
        let mut gas = TwoLevelPredictor::new(TwoLevelConfig::gas_paper(history));
        let pas_result = engine.run(&trace, &mut pas);
        let gas_result = engine.run(&trace, &mut gas);
        println!(
            "history {history:>2}:  PAs miss rate {:>6.3}   GAs miss rate {:>6.3}",
            pas_result.miss_rate().unwrap_or(0.0),
            gas_result.miss_rate().unwrap_or(0.0)
        );
    }
    println!("\nNext: `cargo run --release -p btr-bench --bin reproduce -- all` regenerates every paper artefact.");
}
