//! Trace tools: build a branch trace from the structured CFG program model,
//! round-trip it through the binary and text formats, and inspect it with the
//! stream adapters.
//!
//! Run with: `cargo run --release --example trace_tools`

use btr::prelude::*;
use btr_trace::filter::RecordStreamExt;
use btr_trace::io::{binary, text};
use btr_workloads::cfg::{CfgBuilder, Condition};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // A little program: an outer loop over records, an inner loop over
    // fields, a periodic validity check and a data-dependent comparison.
    let mut builder = CfgBuilder::new(0x0040_0000);
    builder.counted_loop(200, |record_loop| {
        record_loop.counted_loop(8, |field_loop| {
            field_loop.if_else(
                Condition::Modulo {
                    period: 3,
                    phase: 1,
                },
                1,
                1,
            );
        });
        record_loop.if_else(Condition::Random { p_taken: 0.5 }, 2, 2);
        record_loop.if_else(Condition::SameAsPrevious, 1, 0);
    });
    let program = builder.build();
    let trace = program.interpret(50_000, 2024);
    println!("interpreted CFG program: {trace}");

    // Round-trip through both serialization formats.
    let mut binary_bytes = Vec::new();
    binary::write_trace(&mut binary_bytes, &trace)?;
    let reread = binary::read_trace(&mut binary_bytes.as_slice())?;
    assert_eq!(reread.records(), trace.records());
    println!(
        "binary format: {} bytes ({:.2} bytes/record)",
        binary_bytes.len(),
        binary_bytes.len() as f64 / trace.len() as f64
    );

    let mut text_bytes = Vec::new();
    text::write_trace(&mut text_bytes, &trace)?;
    println!("text format:   {} bytes", text_bytes.len());

    // Stream adapters: sample the conditional branches in a window.
    let sampled: Vec<_> = trace
        .records()
        .iter()
        .copied()
        .conditional_only()
        .windowed(0, 10_000)
        .sampled(100)
        .collect();
    println!(
        "sampled {} records from the first 10k (1 in 100)",
        sampled.len()
    );

    // Profile and report the hottest branch.
    let profile = ProgramProfile::from_trace(&trace);
    let hottest = trace.stats().hottest_branch().expect("non-empty trace");
    let branch = profile.branch(hottest.0).expect("profiled branch");
    println!(
        "hottest branch {} executed {} times: taken rate {:.2}, transition rate {:.2}",
        hottest.0,
        branch.executions(),
        branch.taken_rate().map(|r| r.value()).unwrap_or(0.0),
        branch.transition_rate().map(|r| r.value()).unwrap_or(0.0)
    );
    Ok(())
}
