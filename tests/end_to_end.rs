//! End-to-end integration test: workload generation → simulation → the
//! paper's qualitative claims, exercised through the public facade crate.

use btr::prelude::*;
use btr::sim::config::PredictorFamily;
use btr::sim::sweep::HistorySweep;
use btr_core::class::ClassId;
use btr_core::distribution::Metric;

fn mini_suite() -> (Vec<btr_trace::Trace>, ProgramProfile) {
    let config = SuiteConfig::default()
        .with_scale(2e-6)
        .with_seed(2024)
        .with_min_executions_per_branch(200);
    let traces: Vec<_> = [Benchmark::compress(), Benchmark::li(), Benchmark::m88ksim()]
        .iter()
        .map(|b| b.generate(&config))
        .collect();
    let mut profile = ProgramProfile::new();
    for t in &traces {
        profile.merge(&ProgramProfile::from_trace(t));
    }
    (traces, profile)
}

#[test]
fn transition_rate_certifies_more_easy_branches_than_taken_rate() {
    let (_, profile) = mini_suite();
    let table = JointClassTable::from_profile(&profile, BinningScheme::Paper11);
    let analysis = ClassificationAnalysis::from_table(&table);
    // The paper's headline comparison (Section 4.2).
    assert!(
        analysis.transition_easy_coverage_gas > analysis.taken_easy_coverage,
        "GAs-view transition coverage {} should exceed taken coverage {}",
        analysis.transition_easy_coverage_gas,
        analysis.taken_easy_coverage
    );
    assert!(analysis.transition_easy_coverage_pas >= analysis.transition_easy_coverage_gas);
    assert!(analysis.misclassified_pas > 0.0);
}

#[test]
fn pas_handles_high_transition_classes_with_one_or_two_history_bits() {
    let (traces, profile) = mini_suite();
    let refs: Vec<&btr_trace::Trace> = traces.iter().collect();
    let sweep = HistorySweep::new(PredictorFamily::PAs, vec![0, 1, 2, 4]).run(&refs);
    let matrix =
        sweep.class_history_matrix(&profile, Metric::TransitionRate, BinningScheme::Paper11);
    // Transition class 10 exists in the calibrated workload and flips from
    // terrible (zero history) to excellent (>= 1 bit) — the §4.2 observation.
    let at0 = matrix.miss_at(ClassId(10), 0).expect("class 10 populated");
    let at2 = matrix.miss_at(ClassId(10), 2).expect("class 10 populated");
    assert!(at0 >= 0.4, "zero-history miss rate on class 10 was {at0}");
    assert!(
        at2 < 0.15,
        "two-bit-history miss rate on class 10 was {at2}"
    );
    assert!(
        at2 < at0 / 2.0,
        "history should at least halve the class-10 miss rate"
    );
    // Low-transition classes are easy at every history length.
    for h in [0, 2, 4] {
        let rate = matrix.miss_at(ClassId(0), h).expect("class 0 populated");
        assert!(
            rate < 0.12,
            "transition class 0 at history {h} missed {rate}"
        );
    }
}

#[test]
fn joint_5_5_class_is_the_hardest_region_for_both_predictors() {
    let (traces, profile) = mini_suite();
    let refs: Vec<&btr_trace::Trace> = traces.iter().collect();
    for family in [PredictorFamily::PAs, PredictorFamily::GAs] {
        let sweep = HistorySweep::new(family, vec![0, 2, 4, 8]).run(&refs);
        let joint = sweep.joint_miss_matrix(&profile, BinningScheme::Paper11);
        let centre = joint
            .miss_at(ClassId(5), ClassId(5))
            .expect("5/5 class populated");
        assert!(
            centre > 0.3,
            "{} 5/5 miss rate {centre} should stay near 50%",
            family.label()
        );
        // Easy corner: strongly taken, rarely transitioning branches.
        let corner = joint
            .miss_at(ClassId(10), ClassId(0))
            .expect("(10,0) class populated");
        assert!(corner < 0.1, "{} (10,0) miss rate {corner}", family.label());
        assert!(centre > corner * 3.0);
    }
}

#[test]
fn classified_hybrid_is_competitive_with_monolithic_baselines() {
    use btr_core::advisor::HybridAdvisor;
    let (traces, profile) = mini_suite();
    let advisor = HybridAdvisor::new(BinningScheme::Paper11);
    let engine = SimEngine::new();
    let mut hybrid_misses = 0.0;
    let mut gas_misses = 0.0;
    let mut total = 0.0;
    for trace in &traces {
        let mut hybrid = advisor.build_hybrid(&profile);
        let mut gas = TwoLevelPredictor::new(TwoLevelConfig::gas_paper(12));
        let h = engine.run(trace, &mut hybrid);
        let g = engine.run(trace, &mut gas);
        hybrid_misses += h.overall.misses() as f64;
        gas_misses += g.overall.misses() as f64;
        total += h.overall.lookups as f64;
    }
    let hybrid_rate = hybrid_misses / total;
    let gas_rate = gas_misses / total;
    assert!(
        hybrid_rate < gas_rate + 0.03,
        "classified hybrid ({hybrid_rate:.3}) should not lose badly to GAs ({gas_rate:.3})"
    );
}
