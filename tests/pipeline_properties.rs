//! Cross-crate property tests: invariants that must hold for any workload
//! the generator can produce, plus serialization of whole pipeline inputs.

use btr::prelude::*;
use btr_core::rates::TakenRate;
use btr_trace::io::binary;
use btr_workloads::cell::{CellTarget, JointCell};
use btr_workloads::generator::{StaticBranchSpec, WorkloadGenerator};
use proptest::prelude::*;

fn arb_branch_spec(index: u64) -> impl Strategy<Value = Option<StaticBranchSpec>> {
    (
        0usize..11,
        0usize..11,
        50u64..400,
        any::<bool>(),
        any::<u64>(),
    )
        .prop_map(
            move |(taken_class, transition_class, executions, predictable, jitter)| {
                let cell = JointCell::new(taken_class, transition_class);
                let mut rng = rand::rngs::StdRng::seed_from_u64(jitter);
                use rand::SeedableRng;
                let target = CellTarget::sample_within(cell, &mut rng)?;
                Some(StaticBranchSpec {
                    addr: btr_trace::BranchAddr::new(0x40_0000 + index * 8),
                    cell,
                    target,
                    executions,
                    predictable,
                })
            },
        )
}

fn arb_workload() -> impl Strategy<Value = (u64, Vec<StaticBranchSpec>)> {
    let specs =
        proptest::collection::vec(any::<prop::sample::Index>(), 1..12).prop_flat_map(|idx| {
            let strategies: Vec<_> = idx
                .iter()
                .enumerate()
                .map(|(i, _)| arb_branch_spec(i as u64))
                .collect();
            strategies
        });
    (any::<u64>(), specs)
        .prop_map(|(seed, specs)| (seed, specs.into_iter().flatten().collect::<Vec<_>>()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever population the generator is given, the resulting trace and
    /// profile obey the structural invariants the analysis relies on.
    #[test]
    fn generated_workloads_satisfy_classification_invariants((seed, specs) in arb_workload()) {
        prop_assume!(!specs.is_empty());
        let mut generator = WorkloadGenerator::new("prop", seed);
        for spec in &specs {
            generator.add_branch(spec.clone());
        }
        let trace = generator.generate();
        let expected: u64 = specs.iter().map(|s| s.executions).sum();
        prop_assert_eq!(trace.conditional_count(), expected);

        let profile = ProgramProfile::from_trace(&trace);
        prop_assert_eq!(profile.total_dynamic(), expected);

        // Every profiled branch satisfies the transition-rate feasibility
        // bound and classifies into a valid class.
        let scheme = BinningScheme::Paper11;
        for branch in profile.iter() {
            let taken = branch.taken_rate().unwrap();
            let transition = branch.transition_rate().unwrap();
            let limit = TakenRate::new(taken.value()).max_transition_rate().value();
            prop_assert!(transition.value() <= limit + 1e-9,
                "transition {} exceeds limit {} for taken {}", transition.value(), limit, taken.value());
            let (t_class, x_class) = branch.joint_class(scheme).unwrap();
            prop_assert!(t_class.index() < 11 && x_class.index() < 11);
        }

        // The joint table always sums to 100% of the dynamic stream.
        let table = JointClassTable::from_profile(&profile, scheme);
        prop_assert!((table.total_percentage() - 100.0).abs() < 1e-6);

        // Transition-easy coverage (PAs view) can never be smaller than the
        // coverage of transition classes 0-1 alone.
        let analysis = ClassificationAnalysis::from_table(&table);
        prop_assert!(analysis.transition_easy_coverage_pas >= analysis.transition_easy_coverage_gas - 1e-9);
        prop_assert!(analysis.misclassified_gas >= -1e-9);
    }

    /// A generated trace survives a binary round-trip bit-for-bit, and the
    /// profile computed after the round trip matches the original.
    #[test]
    fn generated_traces_roundtrip_through_the_binary_format((seed, specs) in arb_workload()) {
        prop_assume!(!specs.is_empty());
        let mut generator = WorkloadGenerator::new("roundtrip", seed);
        for spec in &specs {
            generator.add_branch(spec.clone());
        }
        let trace = generator.generate();
        let mut bytes = Vec::new();
        binary::write_trace(&mut bytes, &trace).unwrap();
        let reread = binary::read_trace(&mut bytes.as_slice()).unwrap();
        prop_assert_eq!(reread.records(), trace.records());
        let original = ProgramProfile::from_trace(&trace);
        let restored = ProgramProfile::from_trace(&reread);
        prop_assert_eq!(original, restored);
    }

    /// Prediction accuracy of a deterministic predictor is itself
    /// deterministic: the same trace simulated twice gives identical results.
    #[test]
    fn simulation_is_deterministic(seed in any::<u64>()) {
        let config = SuiteConfig::default()
            .with_scale(2e-7)
            .with_seed(seed)
            .with_min_executions_per_branch(50);
        let trace = Benchmark::compress().generate(&config);
        let engine = SimEngine::new();
        let mut a = TwoLevelPredictor::new(TwoLevelConfig::pas_paper(4));
        let mut b = TwoLevelPredictor::new(TwoLevelConfig::pas_paper(4));
        let ra = engine.run(&trace, &mut a);
        let rb = engine.run(&trace, &mut b);
        prop_assert_eq!(ra.overall, rb.overall);
        prop_assert_eq!(ra.per_branch, rb.per_branch);
    }
}
