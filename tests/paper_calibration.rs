//! Calibration tests: the synthetic suite must reproduce the paper's
//! published distribution numbers (Table 2 and its derived coverages) within
//! a modest tolerance once enough dynamic branches are generated.

use btr::prelude::*;
use btr_workloads::table2;

/// Generate a moderately sized subset of the suite (the four largest
/// benchmarks) and merge the profiles.
fn calibrated_profile() -> ProgramProfile {
    let config = SuiteConfig::default()
        .with_scale(4e-6)
        .with_seed(7)
        .with_min_executions_per_branch(300);
    let mut profile = ProgramProfile::new();
    for bench in [
        Benchmark::compress(),
        Benchmark::li(),
        Benchmark::m88ksim(),
        Benchmark::vortex(),
    ] {
        profile.merge(&ProgramProfile::from_trace(&bench.generate(&config)));
    }
    profile
}

#[test]
fn joint_distribution_tracks_table2() {
    let profile = calibrated_profile();
    let table = JointClassTable::from_profile(&profile, BinningScheme::Paper11);
    assert!((table.total_percentage() - 100.0).abs() < 1e-6);

    // The two dominant corners of Table 2 (always-taken and never-taken
    // branches) must dominate here too.
    let class = |t: usize, x: usize| {
        table.percent(btr_core::class::ClassId(t), btr_core::class::ClassId(x))
    };
    assert!(
        (class(10, 0) - table2::cell_percent(10, 0)).abs() < 6.0,
        "cell (10,0): generated {:.2}%, paper {:.2}%",
        class(10, 0),
        table2::cell_percent(10, 0)
    );
    assert!(
        (class(0, 0) - table2::cell_percent(0, 0)).abs() < 6.0,
        "cell (0,0): generated {:.2}%, paper {:.2}%",
        class(0, 0),
        table2::cell_percent(0, 0)
    );
    // The hard centre is a small but non-empty share, as in the paper (1.34%).
    assert!(
        class(5, 5) > 0.2 && class(5, 5) < 5.0,
        "cell (5,5) = {:.2}%",
        class(5, 5)
    );
}

#[test]
fn headline_coverage_numbers_are_close_to_the_paper() {
    let profile = calibrated_profile();
    let table = JointClassTable::from_profile(&profile, BinningScheme::Paper11);
    let analysis = ClassificationAnalysis::from_table(&table);
    // Paper: 62.90% / 71.62% / 72.19% / 8.72% / 9.29%. The synthetic suite is
    // calibrated to Table 2, so these land close (within a few points — the
    // tolerance absorbs sampling noise at reduced scale and per-benchmark
    // perturbations).
    assert!(
        (analysis.taken_easy_coverage - table2::PAPER_TAKEN_EASY_COVERAGE).abs() < 8.0,
        "taken-easy coverage {:.2}%",
        analysis.taken_easy_coverage
    );
    assert!(
        (analysis.transition_easy_coverage_gas - table2::PAPER_TRANSITION_EASY_COVERAGE_GAS).abs()
            < 8.0,
        "transition-easy (GAs) coverage {:.2}%",
        analysis.transition_easy_coverage_gas
    );
    assert!(
        (analysis.transition_easy_coverage_pas - table2::PAPER_TRANSITION_EASY_COVERAGE_PAS).abs()
            < 8.0,
        "transition-easy (PAs) coverage {:.2}%",
        analysis.transition_easy_coverage_pas
    );
    assert!(
        analysis.misclassified_pas > 3.0 && analysis.misclassified_pas < 16.0,
        "misclassified (PAs view) {:.2}%",
        analysis.misclassified_pas
    );
}

#[test]
fn marginal_distributions_match_figures_1_and_2_shape() {
    use btr_core::distribution::{ClassDistribution, Metric};
    let profile = calibrated_profile();
    let scheme = BinningScheme::Paper11;
    let taken = ClassDistribution::from_profile(&profile, Metric::TakenRate, scheme);
    let transition = ClassDistribution::from_profile(&profile, Metric::TransitionRate, scheme);
    let taken_pct = taken.percentages();
    let transition_pct = transition.percentages();
    // Figure 1: bimodal, extremes dominate.
    assert!(
        taken_pct[0] > 15.0,
        "taken class 0 share {:.2}",
        taken_pct[0]
    );
    assert!(
        taken_pct[10] > 25.0,
        "taken class 10 share {:.2}",
        taken_pct[10]
    );
    // Figure 2: transition class 0 alone holds the majority.
    assert!(
        transition_pct[0] > 45.0,
        "transition class 0 share {:.2}",
        transition_pct[0]
    );
    // Middle classes are small in both, as in the paper.
    assert!(taken_pct[5] < 12.0);
    assert!(transition_pct[5] < 12.0);
}

#[test]
fn table1_counts_are_reproduced_exactly_in_the_descriptors() {
    let suite = Benchmark::suite();
    let total: u64 = suite.iter().map(|b| b.paper_dynamic_branches).sum();
    // Spot checks against the paper's Table 1.
    assert_eq!(suite.len(), 34);
    assert_eq!(
        suite
            .iter()
            .find(|b| b.input_set == "bigtest.in")
            .unwrap()
            .paper_dynamic_branches,
        5_641_834_221
    );
    assert_eq!(
        suite
            .iter()
            .find(|b| b.input_set == "9stone21.in")
            .unwrap()
            .paper_dynamic_branches,
        3_838_574_925
    );
    assert_eq!(
        suite
            .iter()
            .find(|b| b.input_set == "scrabbl.pl")
            .unwrap()
            .paper_dynamic_branches,
        3_150_939_854
    );
    // And the scaled counts follow the scale factor.
    let config = SuiteConfig::default().with_scale(1e-6);
    let scaled = suite[0].scaled_dynamic_branches(&config);
    assert!((scaled as f64 - suite[0].paper_dynamic_branches as f64 * 1e-6).abs() < 1.0);
    assert!(total > 45_000_000_000);
}
